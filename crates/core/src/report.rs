//! Plain-text rendering of experiment results, in the same rows/series the
//! paper's figures report.

use crate::experiments::cluster_sweep::ClusterSweepPoint;
use crate::experiments::fault_sweep::FaultSweepPoint;
use crate::experiments::fig1::{Fig1bSeries, Fig1cPoint, FlannVariant};
use crate::experiments::fig2::{Fig2aPoint, Fig2bPoint};
use crate::experiments::fig5::Fig5Cell;
use crate::experiments::fig6::Fig6Cell;
use crate::experiments::hedge_sweep::HedgeSweepPoint;
use crate::experiments::rack_sweep::RackSweepPoint;
use crate::experiments::timeline::Timeline;
use duplexity_cpu::designs::Design;
use duplexity_queueing::closed_loop::SurfaceCell;
use std::fmt::Write as _;

/// Formats a normalized value, marking saturated queues.
fn norm(v: f64) -> String {
    if v.is_finite() {
        format!("{v:>7.3}")
    } else {
        "    sat".to_string()
    }
}

/// Renders the Figure 1(a) surface as a sparse grid (one row per stall
/// duration).
#[must_use]
pub fn render_fig1a(cells: &[SurfaceCell]) -> String {
    let mut out = String::from("Fig 1(a): utilization vs (stall µs, compute µs)\n");
    let mut row_key = f64::NAN;
    for c in cells {
        if c.stall_us != row_key {
            row_key = c.stall_us;
            let _ = write!(out, "\nstall {:>8.2}µs |", c.stall_us);
        }
        let _ = write!(out, " {:>4.2}", c.utilization);
    }
    out.push('\n');
    out
}

/// Renders the Figure 1(b) idle-period CDFs at a few probe durations.
#[must_use]
pub fn render_fig1b(series: &[Fig1bSeries]) -> String {
    let probes = [1.0, 2.0, 5.0, 10.0, 20.0, 40.0];
    let mut out = String::from("Fig 1(b): P(idle <= t)\n");
    let _ = writeln!(
        out,
        "{:<22} {}",
        "series",
        probes
            .iter()
            .map(|p| format!("{p:>7.0}µs"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for s in series {
        let name = format!("{}K QPS @ {:.0}%", (s.qps / 1000.0) as u64, s.load * 100.0);
        let vals: Vec<String> = probes
            .iter()
            .map(|&p| {
                let v = s
                    .cdf
                    .iter()
                    .min_by(|a, b| {
                        (a.0 - p)
                            .abs()
                            .partial_cmp(&(b.0 - p).abs())
                            .expect("finite")
                    })
                    .map_or(0.0, |x| x.1);
                format!("{v:>9.3}")
            })
            .collect();
        let _ = writeln!(out, "{name:<22} {}", vals.join(" "));
    }
    out
}

/// Renders Figure 1(c) as one series per FLANN variant.
#[must_use]
pub fn render_fig1c(points: &[Fig1cPoint]) -> String {
    let mut out = String::from("Fig 1(c): normalized throughput vs SMT threads\n");
    for variant in FlannVariant::ALL {
        let series: Vec<&Fig1cPoint> = points.iter().filter(|p| p.variant == variant).collect();
        if series.is_empty() {
            continue;
        }
        let _ = write!(out, "{:<12}", variant.name());
        for p in &series {
            let _ = write!(out, " {:>5.2}", p.normalized);
        }
        out.push('\n');
    }
    out
}

/// Renders Figure 2(a).
#[must_use]
pub fn render_fig2a(points: &[Fig2aPoint]) -> String {
    let mut out = String::from("Fig 2(a): threads | OoO IPC | InO IPC | InO/OoO\n");
    for p in points {
        let _ = writeln!(
            out,
            "{:>7} | {:>7.2} | {:>7.2} | {:>7.2}",
            p.threads,
            p.ooo_ipc,
            p.ino_ipc,
            p.ino_over_ooo()
        );
    }
    out
}

/// Renders Figure 2(b) as two series.
#[must_use]
pub fn render_fig2b(points: &[Fig2bPoint]) -> String {
    let mut out = String::from("Fig 2(b): P(>=8 ready) vs virtual contexts\n");
    for stall in [0.1, 0.5] {
        let _ = write!(out, "p_stall={stall:<4}");
        for p in points.iter().filter(|p| p.stall_p == stall) {
            let _ = write!(out, " {:>4.2}", p.p_ready);
        }
        out.push('\n');
    }
    out
}

/// Renders one Figure 5 sub-figure as a design × (workload, load) matrix.
///
/// `metric` selects the value; `label` names the sub-figure.
#[must_use]
pub fn render_fig5_matrix(
    cells: &[Fig5Cell],
    label: &str,
    metric: impl Fn(&Fig5Cell) -> f64,
) -> String {
    let mut out = format!("{label}\n");
    let mut columns: Vec<(String, f64, duplexity_workloads::Workload)> = Vec::new();
    for c in cells {
        let key = format!("{}@{:.0}%", c.workload.name(), c.load * 100.0);
        if !columns.iter().any(|(k, _, _)| *k == key) {
            columns.push((key, c.load, c.workload));
        }
    }
    let _ = write!(out, "{:<15}", "design");
    for (k, _, _) in &columns {
        let _ = write!(out, " {k:>15}");
    }
    out.push('\n');
    for design in Design::ALL_WITH_EXTENSIONS {
        let rows: Vec<&Fig5Cell> = cells.iter().filter(|c| c.design == design).collect();
        if rows.is_empty() {
            continue;
        }
        let _ = write!(out, "{:<15}", design.name());
        for (_, load, workload) in &columns {
            let v = rows
                .iter()
                .find(|c| c.load == *load && c.workload == *workload)
                .map_or(f64::NAN, |c| metric(c));
            let _ = write!(out, " {:>15}", norm(v));
        }
        out.push('\n');
    }
    out
}

/// Renders a per-component power breakdown for each design at a nominal
/// operating point (the `report --power` artifact).
#[must_use]
pub fn render_power_breakdown(ipc: f64) -> String {
    use duplexity_power::{component_power, core_kind_for};
    let mut out = format!(
        "Per-component power at IPC {ipc:.1} (W, static+dynamic)
"
    );
    for design in Design::ALL {
        let kind = core_kind_for(design);
        let parts = component_power(kind, ipc, design.clock_ghz(), 0.0);
        let total: f64 = parts.iter().map(|p| p.total_w()).sum();
        let _ = writeln!(
            out,
            "
{} ({total:.2} W total):",
            design.name()
        );
        for p in parts {
            let _ = writeln!(
                out,
                "  {:<34} {:>5.2} W  ({:>4.2} static + {:>4.2} dynamic)",
                p.name,
                p.total_w(),
                p.static_w,
                p.dynamic_w
            );
        }
    }
    out
}

/// Renders the fault-policy sweep: one row per policy with per-load p99
/// columns, then the policy's fault-activity counters.
#[must_use]
pub fn render_fault_sweep(points: &[FaultSweepPoint]) -> String {
    let mut out = String::from("Fault sweep: p99 sojourn (µs) per policy and load\n");
    let mut loads: Vec<f64> = Vec::new();
    for p in points {
        if !loads.contains(&p.load) {
            loads.push(p.load);
        }
    }
    let _ = write!(out, "{:<14}", "policy");
    for l in &loads {
        let _ = write!(out, " {:>9}", format!("p99@{:.0}%", l * 100.0));
    }
    let _ = writeln!(out, " {:>9} {:>9} {:>9}", "attempts", "drop", "fail");
    let mut names: Vec<&str> = Vec::new();
    for p in points {
        if !names.contains(&p.policy.as_str()) {
            names.push(&p.policy);
        }
    }
    for name in names {
        let rows: Vec<&FaultSweepPoint> = points.iter().filter(|p| p.policy == name).collect();
        let _ = write!(out, "{name:<14}");
        for l in &loads {
            let v = rows
                .iter()
                .find(|p| p.load == *l)
                .map_or(f64::NAN, |p| p.p99_us);
            let _ = write!(out, " {:>9}", norm(v));
        }
        // Fault activity is load-independent up to sampling noise; report
        // the highest stable load's counters.
        let last = rows.iter().rev().find(|p| !p.saturated);
        match last {
            Some(p) => {
                let _ = writeln!(
                    out,
                    " {:>9.3} {:>9.3} {:>9.4}",
                    p.mean_attempts, p.drop_rate, p.fail_rate
                );
            }
            None => {
                let _ = writeln!(out, " {:>9} {:>9} {:>9}", "sat", "sat", "sat");
            }
        }
    }
    out
}

/// Renders the cluster balancing sweep: one design × cluster-size block,
/// one row per policy, per-load p99 columns plus the mean per-server
/// utilization at the highest stable load.
#[must_use]
pub fn render_cluster_sweep(points: &[ClusterSweepPoint]) -> String {
    let mut out =
        String::from("Cluster sweep: p99 sojourn (µs) per policy, design, and farm size\n");
    let mut loads: Vec<f64> = Vec::new();
    for p in points {
        if !loads.contains(&p.load) {
            loads.push(p.load);
        }
    }
    let mut blocks: Vec<(Design, usize)> = Vec::new();
    for p in points {
        if !blocks.contains(&(p.design, p.servers)) {
            blocks.push((p.design, p.servers));
        }
    }
    for (design, servers) in blocks {
        let _ = writeln!(out, "\n{} × {servers} servers", design.name());
        let _ = write!(out, "{:<14}", "policy");
        for l in &loads {
            let _ = write!(out, " {:>9}", format!("p99@{:.0}%", l * 100.0));
        }
        let _ = writeln!(out, " {:>9}", "util");
        let mut names: Vec<&str> = Vec::new();
        for p in points
            .iter()
            .filter(|p| p.design == design && p.servers == servers)
        {
            if !names.contains(&p.policy.as_str()) {
                names.push(&p.policy);
            }
        }
        for name in names {
            let rows: Vec<&ClusterSweepPoint> = points
                .iter()
                .filter(|p| p.design == design && p.servers == servers && p.policy == name)
                .collect();
            let _ = write!(out, "{name:<14}");
            for l in &loads {
                let v = rows
                    .iter()
                    .find(|p| p.load == *l)
                    .map_or(f64::NAN, |p| p.p99_us);
                let _ = write!(out, " {:>9}", norm(v));
            }
            match rows.iter().rev().find(|p| !p.saturated) {
                Some(p) => {
                    let _ = writeln!(out, " {:>9.3}", p.utilization);
                }
                None => {
                    let _ = writeln!(out, " {:>9}", "sat");
                }
            }
        }
    }
    out
}

/// Renders the two-level rack sweep: one design × cluster-size block, one
/// row per (policy, plan) — the centralized-vs-distributed comparison at
/// each staleness Δ — with per-load p99 columns plus the mean wait and
/// steal count at the highest stable load. Rows group by policy and walk
/// the plan axis in grid order, so each policy reads as a tail-vs-Δ
/// series with the distributed and stealing variants alongside.
#[must_use]
pub fn render_rack_sweep(points: &[RackSweepPoint]) -> String {
    let mut out = String::from(
        "Rack sweep: p99 sojourn (µs) per plan (coordination × staleness × steal), policy, and farm size\n",
    );
    let mut loads: Vec<f64> = Vec::new();
    for p in points {
        if !loads.contains(&p.load) {
            loads.push(p.load);
        }
    }
    let mut blocks: Vec<(Design, usize)> = Vec::new();
    for p in points {
        if !blocks.contains(&(p.design, p.servers)) {
            blocks.push((p.design, p.servers));
        }
    }
    for (design, servers) in blocks {
        let _ = writeln!(out, "\n{} × {servers} servers", design.name());
        let _ = write!(out, "{:<14} {:<16}", "policy", "plan");
        for l in &loads {
            let _ = write!(out, " {:>9}", format!("p99@{:.0}%", l * 100.0));
        }
        let _ = writeln!(out, " {:>9} {:>7}", "wait", "steals");
        let mut rows_seen: Vec<(&str, &str)> = Vec::new();
        for p in points
            .iter()
            .filter(|p| p.design == design && p.servers == servers)
        {
            if !rows_seen.contains(&(p.policy.as_str(), p.plan.as_str())) {
                rows_seen.push((&p.policy, &p.plan));
            }
        }
        for (policy, plan) in rows_seen {
            let rows: Vec<&RackSweepPoint> = points
                .iter()
                .filter(|p| {
                    p.design == design
                        && p.servers == servers
                        && p.policy == policy
                        && p.plan == plan
                })
                .collect();
            let _ = write!(out, "{policy:<14} {plan:<16}");
            for l in &loads {
                let v = rows
                    .iter()
                    .find(|p| p.load == *l)
                    .map_or(f64::NAN, |p| p.p99_us);
                let _ = write!(out, " {:>9}", norm(v));
            }
            match rows.iter().rev().find(|p| !p.saturated) {
                Some(p) => {
                    let _ = writeln!(out, " {:>9.3} {:>7}", p.mean_wait_us, p.steals);
                }
                None => {
                    let _ = writeln!(out, " {:>9} {:>7}", "sat", "-");
                }
            }
        }
    }
    out
}

/// Renders the duplication/hedging sweep: one policy × cluster-size block,
/// one row per duplication plan, per-load p99 columns, plus the frontier
/// columns at the highest load every plan in the block survives: the added
/// per-server utilization the plan buys its tail cut with, and the tail
/// microseconds saved per percentage point of added load (`Δp99/+1%u`,
/// `-` for the zero-duplication origin of the frontier).
#[must_use]
pub fn render_hedge_sweep(points: &[HedgeSweepPoint]) -> String {
    let mut out =
        String::from("Hedge sweep: p99 sojourn (µs) per duplication plan, policy, and farm size\n");
    let mut loads: Vec<f64> = Vec::new();
    for p in points {
        if !loads.contains(&p.load) {
            loads.push(p.load);
        }
    }
    let mut blocks: Vec<(&str, usize)> = Vec::new();
    for p in points {
        if !blocks.contains(&(p.policy.as_str(), p.servers)) {
            blocks.push((&p.policy, p.servers));
        }
    }
    for (policy, servers) in blocks {
        let _ = writeln!(out, "\n{policy} × {servers} servers");
        let _ = write!(out, "{:<14}", "plan");
        for l in &loads {
            let _ = write!(out, " {:>9}", format!("p99@{:.0}%", l * 100.0));
        }
        let _ = writeln!(out, " {:>9} {:>9}", "+util", "Δp99/+1%u");
        let block: Vec<&HedgeSweepPoint> = points
            .iter()
            .filter(|p| p.policy == policy && p.servers == servers)
            .collect();
        let mut plans: Vec<&str> = Vec::new();
        for p in &block {
            if !plans.contains(&p.plan.as_str()) {
                plans.push(&p.plan);
            }
        }
        // The frontier is evaluated at the highest load where *every* plan
        // in the block is stable, so the added-load comparison is paired.
        let frontier_load = loads
            .iter()
            .rev()
            .find(|&&l| block.iter().filter(|p| p.load == l).all(|p| !p.saturated))
            .copied();
        let baseline = frontier_load.and_then(|l| {
            block
                .iter()
                .find(|p| p.load == l && p.plan == "none")
                .map(|p| p.p99_us)
        });
        for plan in plans {
            let rows: Vec<&&HedgeSweepPoint> = block.iter().filter(|p| p.plan == plan).collect();
            let _ = write!(out, "{plan:<14}");
            for l in &loads {
                let v = rows
                    .iter()
                    .find(|p| p.load == *l)
                    .map_or(f64::NAN, |p| p.p99_us);
                let _ = write!(out, " {:>9}", norm(v));
            }
            let at_frontier =
                frontier_load.and_then(|l| rows.iter().find(|p| p.load == l).copied());
            match at_frontier {
                Some(p) => {
                    let _ = write!(out, " {:>9.4}", p.added_utilization);
                    match baseline {
                        Some(base) if p.added_utilization > 0.0 => {
                            let _ = writeln!(
                                out,
                                " {:>9.3}",
                                (base - p.p99_us) / (p.added_utilization * 100.0)
                            );
                        }
                        _ => {
                            let _ = writeln!(out, " {:>9}", "-");
                        }
                    }
                }
                None => {
                    let _ = writeln!(out, " {:>9} {:>9}", "sat", "sat");
                }
            }
        }
    }
    out
}

/// Renders Figure 6.
#[must_use]
pub fn render_fig6(cells: &[Fig6Cell]) -> String {
    let mut out = String::from("Fig 6: NIC IOPS utilization per dyad\n");
    for c in cells {
        let _ = writeln!(
            out,
            "{:<15} {:<10} @{:>3.0}% : {:>6.2}% of FDR ({:>6.2}M ops/s)",
            c.design.name(),
            c.workload.name(),
            c.load * 100.0,
            c.nic_utilization * 100.0,
            c.ops_per_second / 1e6
        );
    }
    out
}

/// Renders the request-domain timeline: per-load endpoint summaries, the
/// DES self-profile counters, and one ASCII sparkline per gauge series
/// (bin means normalized to the series maximum mean, downsampled to at
/// most 64 columns by averaging runs of bins). Purely a view over the
/// deterministic artifact — no wall-clock data, no RNG.
#[must_use]
pub fn render_timeline(t: &Timeline) -> String {
    const LEVELS: &[u8] = b" .:-=+*#%@";
    const WIDTH: usize = 64;
    let mut out = String::from("Timeline: event-clock gauges and DES self-profile\n");
    let _ = writeln!(out, "bin width: {} us", t.bin_us);
    for c in &t.cells {
        let _ = writeln!(
            out,
            "load {:>5.2}: {:>8} samples, p99 {} us (sketch {} us)",
            c.load,
            c.samples,
            norm(c.p99_us).trim(),
            norm(c.sketch_p99_us).trim(),
        );
    }
    let mut profiled = false;
    for (name, v) in t.registry.counters() {
        if name.contains("/cluster/eventq/") || name.contains("/cluster/events/") {
            if !profiled {
                out.push_str("\nevent-core profile:\n");
                profiled = true;
            }
            let _ = writeln!(out, "  {name:<52} {v:>12}");
        }
    }
    out.push_str("\ngauges (bin means, normalized per series):\n");
    for (name, series) in t.series.series() {
        let bins = series.bins();
        // Downsample to at most WIDTH columns: each column averages the
        // means of its (non-empty) bins.
        let cols = bins.len().clamp(1, WIDTH);
        let mut col_mean = vec![0.0f64; cols];
        let mut col_n = vec![0u64; cols];
        for (i, b) in bins.iter().enumerate() {
            if b.count > 0 {
                let c = i * cols / bins.len();
                col_mean[c] += b.mean();
                col_n[c] += 1;
            }
        }
        let mut peak = 0.0f64;
        for (m, &k) in col_mean.iter_mut().zip(&col_n) {
            if k > 0 {
                *m /= k as f64;
                peak = peak.max(*m);
            }
        }
        let spark: String = col_mean
            .iter()
            .zip(&col_n)
            .map(|(&m, &k)| {
                if k == 0 || peak <= 0.0 {
                    ' '
                } else {
                    let lvl = (m / peak * (LEVELS.len() - 1) as f64).round() as usize;
                    LEVELS[lvl.min(LEVELS.len() - 1)] as char
                }
            })
            .collect();
        let _ = writeln!(
            out,
            "  {name:<44} |{spark}| peak {:.3} ({} samples)",
            peak,
            series.samples(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{fig1, fig2};

    #[test]
    fn fig1a_rendering_contains_rows() {
        let s = render_fig1a(&fig1::fig1a(1));
        assert!(s.contains("stall"));
        assert!(s.lines().count() > 4);
    }

    #[test]
    fn fig1b_rendering_lists_six_series() {
        let s = render_fig1b(&fig1::fig1b(40));
        assert_eq!(s.lines().filter(|l| l.contains("QPS")).count(), 6);
    }

    #[test]
    fn fig2b_rendering_has_two_series() {
        let s = render_fig2b(&fig2::fig2b(16));
        assert!(s.contains("p_stall=0.1"));
        assert!(s.contains("p_stall=0.5"));
    }

    #[test]
    fn fault_sweep_rendering_has_one_row_per_policy() {
        let points = vec![
            FaultSweepPoint {
                policy: "none".to_string(),
                load: 0.3,
                p50_us: 5.0,
                p99_us: 20.0,
                mean_us: 7.0,
                mean_attempts: 1.0,
                drop_rate: 0.0,
                fail_rate: 0.0,
                saturated: false,
            },
            FaultSweepPoint {
                policy: "drop-retry".to_string(),
                load: 0.3,
                p50_us: 6.0,
                p99_us: 40.0,
                mean_us: 9.0,
                mean_attempts: 1.05,
                drop_rate: 0.05,
                fail_rate: 0.0001,
                saturated: false,
            },
        ];
        let s = render_fault_sweep(&points);
        assert!(s.contains("p99@30%"), "{s}");
        assert!(s.lines().any(|l| l.starts_with("none")), "{s}");
        assert!(s.lines().any(|l| l.starts_with("drop-retry")), "{s}");
        assert!(s.contains("1.050"), "{s}");
    }

    #[test]
    fn cluster_sweep_rendering_groups_by_design_and_size() {
        let mk = |policy: &str, load: f64, p99: f64, saturated: bool| ClusterSweepPoint {
            design: Design::Baseline,
            policy: policy.to_string(),
            servers: 4,
            load,
            p99_us: p99,
            p50_us: p99 / 4.0,
            mean_us: p99 / 3.0,
            mean_wait_us: p99 / 8.0,
            utilization: if saturated { 1.0 } else { load },
            samples: if saturated { 0 } else { 1000 },
            converged: !saturated,
            saturated,
        };
        let points = vec![
            mk("random", 0.3, 40.0, false),
            mk("random", 0.9, f64::INFINITY, true),
            mk("jsq", 0.3, 25.0, false),
            mk("jsq", 0.9, 60.0, false),
        ];
        let s = render_cluster_sweep(&points);
        assert!(s.contains("Baseline × 4 servers"), "{s}");
        assert!(s.contains("p99@30%") && s.contains("p99@90%"), "{s}");
        assert!(
            s.lines()
                .any(|l| l.starts_with("random") && l.contains("sat")),
            "{s}"
        );
        assert!(
            s.lines()
                .any(|l| l.starts_with("jsq") && l.contains("60.000")),
            "{s}"
        );
    }

    #[test]
    fn rack_sweep_rendering_compares_plans_within_a_policy() {
        let mk = |plan: &str, coord: &str, delta: f64, load: f64, p99: f64, steals: u64| {
            RackSweepPoint {
                design: Design::Baseline,
                policy: "jsq".to_string(),
                plan: plan.to_string(),
                coordination: coord.to_string(),
                delta_us: delta,
                servers: 8,
                load,
                p99_us: p99,
                p50_us: p99 / 4.0,
                mean_us: p99 / 3.0,
                mean_wait_us: p99 / 8.0,
                hot_p99_us: p99 * 1.1,
                utilization: load,
                steals,
                steals_empty: 0,
                samples: 1000,
                converged: true,
                saturated: false,
            }
        };
        let points = vec![
            mk("central", "central", 0.0, 0.5, 14.0, 0),
            mk("central", "central", 0.0, 0.7, 18.0, 0),
            mk("central_d8", "central", 8.0, 0.5, 15.0, 0),
            mk("central_d8", "central", 8.0, 0.7, 20.0, 0),
            mk("dist4_d8_z0.99", "dist4", 8.0, 0.5, 24.0, 0),
            mk("dist4_d8_z0.99", "dist4", 8.0, 0.7, 33.0, 0),
            mk("central_d8_st2", "central", 8.0, 0.5, 14.5, 321),
            mk("central_d8_st2", "central", 8.0, 0.7, 19.0, 640),
        ];
        let s = render_rack_sweep(&points);
        assert!(s.contains("Baseline × 8 servers"), "{s}");
        assert!(s.contains("p99@50%") && s.contains("p99@70%"), "{s}");
        // Centralized and distributed variants sit in the same block for
        // direct comparison, and steal counts surface per row.
        assert!(s.contains("central_d8"), "{s}");
        assert!(s.contains("dist4_d8_z0.99"), "{s}");
        assert!(
            s.lines()
                .any(|l| l.contains("central_d8_st2") && l.trim_end().ends_with("640")),
            "{s}"
        );
    }

    #[test]
    fn hedge_sweep_rendering_reports_the_paired_frontier() {
        let mk = |plan: &str, load: f64, p99: f64, added: f64, saturated: bool| HedgeSweepPoint {
            policy: "jsq".to_string(),
            plan: plan.to_string(),
            servers: 4,
            load,
            p99_us: p99,
            p50_us: p99 / 4.0,
            mean_us: p99 / 3.0,
            mean_wait_us: p99 / 8.0,
            dup_mean_wait_us: 0.0,
            utilization: if saturated { 1.0 } else { load + added },
            added_utilization: added,
            dup_copies: if plan == "none" { 0 } else { 500 },
            hedges_fired: 0,
            purged: 0,
            wasted_completions: 0,
            samples: if saturated { 0 } else { 1000 },
            converged: !saturated,
            saturated,
        };
        let points = vec![
            mk("none", 0.3, 40.0, 0.0, false),
            mk("none", 0.5, 60.0, 0.0, false),
            mk("dup2", 0.3, 25.0, 0.2, false),
            mk("dup2", 0.5, 30.0, 0.25, false),
            mk("dup2_np", 0.3, 26.0, 0.3, false),
            // dup2_np saturates at 0.5, so the paired frontier must fall
            // back to the 0.3 column for the whole block.
            mk("dup2_np", 0.5, f64::INFINITY, 0.0, true),
        ];
        let s = render_hedge_sweep(&points);
        assert!(s.contains("jsq × 4 servers"), "{s}");
        assert!(s.contains("p99@30%") && s.contains("p99@50%"), "{s}");
        // The origin plan shows no frontier slope.
        assert!(
            s.lines()
                .any(|l| l.starts_with("none") && l.trim_end().ends_with('-')),
            "{s}"
        );
        // Frontier @30%: dup2 saves (40-25)µs for 20% added load → 0.75.
        assert!(
            s.lines()
                .any(|l| l.starts_with("dup2 ") && l.contains("0.750")),
            "{s}"
        );
        assert!(
            s.lines()
                .any(|l| l.starts_with("dup2_np") && l.contains("sat")),
            "{s}"
        );
    }

    #[test]
    fn norm_marks_saturation() {
        assert_eq!(norm(f64::INFINITY), "    sat");
        assert!(norm(1.234).contains("1.234"));
    }

    #[test]
    fn timeline_rendering_shows_profile_and_sparklines() {
        use crate::experiments::timeline::{timeline, TimelineOptions};
        use duplexity_queueing::des::Mg1Options;
        let t = timeline(&TimelineOptions {
            servers: 4,
            loads: vec![0.4],
            queue: Mg1Options {
                max_samples: 5_000,
                warmup: 500,
                ..Mg1Options::default()
            },
            ..TimelineOptions::default()
        });
        let s = render_timeline(&t);
        assert_eq!(s, render_timeline(&t), "rendering must be deterministic");
        assert!(s.contains("event-core profile:"), "{s}");
        assert!(s.contains("cluster/eventq/pushes"), "{s}");
        assert!(s.contains("load0.4/cluster/busy_servers"), "{s}");
        // Sparkline bars exist and are bounded by the declared width.
        let bar = s
            .lines()
            .find(|l| l.contains("busy_servers"))
            .and_then(|l| {
                let a = l.find('|')?;
                let b = l.rfind('|')?;
                Some(&l[a + 1..b])
            })
            .expect("sparkline line");
        assert!(!bar.is_empty() && bar.len() <= 64, "{bar:?}");
    }
}
