//! OS-level virtual-context provisioning (§IV "Scheduling").
//!
//! The paper leaves context provisioning to software: "The OS must select
//! how many virtual (filler) contexts to activate in a dyad. One option is
//! to simply over-provision, but this may lead to long scheduling delays
//! for ready virtual contexts." This module implements both policies the
//! discussion sketches:
//!
//! * [`recommend_contexts`] — the *model-driven* sizing of Figure 2(b): from
//!   a measured per-thread stall fraction, pick the smallest `n` with
//!   `P(ready ≥ physical) ≥ target` under `Binomial(n, 1-p)`;
//! * [`AdaptiveProvisioner`] — a *feedback* controller in the spirit of CPU
//!   hot-plug \[88\]: observe filler throughput per epoch, add contexts while
//!   the marginal gain justifies them, retire contexts when it does not.

use duplexity_stats::binomial::required_virtual_contexts;
use serde::{Deserialize, Serialize};

/// Provisioning targets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisionerConfig {
    /// Physical contexts to keep fed (8 per core; 16 across a dyad whose
    /// master is mostly morphed).
    pub physical: u32,
    /// Required probability that `physical` contexts are ready.
    pub target_occupancy: f64,
    /// Hard cap on virtual contexts (register-backing-store budget).
    pub max_contexts: u32,
    /// Minimum relative throughput gain that justifies one more context.
    pub min_marginal_gain: f64,
}

impl Default for ProvisionerConfig {
    fn default() -> Self {
        Self {
            physical: 8,
            target_occupancy: 0.9,
            max_contexts: 64,
            min_marginal_gain: 0.02,
        }
    }
}

/// Model-driven sizing: the smallest context count that keeps the physical
/// contexts fed, given the measured per-thread stall fraction.
///
/// Falls back to `cfg.max_contexts` when the target is unreachable (threads
/// stalled so often that no affordable pool suffices).
///
/// # Examples
///
/// ```
/// use duplexity::scheduler::{recommend_contexts, ProvisionerConfig};
///
/// let cfg = ProvisionerConfig::default();
/// // §IV: ~50%-stalled batch threads need 21 contexts for one core.
/// assert_eq!(recommend_contexts(0.5, &cfg), 21);
/// ```
#[must_use]
pub fn recommend_contexts(stall_fraction: f64, cfg: &ProvisionerConfig) -> u32 {
    let p = stall_fraction.clamp(0.0, 0.999);
    required_virtual_contexts(cfg.physical, p, cfg.target_occupancy, cfg.max_contexts)
        .unwrap_or(cfg.max_contexts)
}

/// A decision the adaptive controller hands back each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProvisionDecision {
    /// Activate this many additional virtual contexts.
    Add(u32),
    /// Keep the current pool.
    Keep,
    /// Park this many contexts (HLT, §IV).
    Park(u32),
}

/// Feedback-driven provisioning: adds contexts while filler throughput keeps
/// improving, parks them once gains flatten.
#[derive(Debug, Clone)]
pub struct AdaptiveProvisioner {
    cfg: ProvisionerConfig,
    current: u32,
    step: u32,
    history: Vec<(u32, f64)>, // (contexts, observed ops/cycle)
}

impl AdaptiveProvisioner {
    /// Starts from `initial` contexts.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or exceeds the configured maximum.
    #[must_use]
    pub fn new(cfg: ProvisionerConfig, initial: u32) -> Self {
        assert!(
            initial > 0 && initial <= cfg.max_contexts,
            "bad initial context count"
        );
        Self {
            cfg,
            current: initial,
            step: 4,
            history: Vec::new(),
        }
    }

    /// Currently provisioned contexts.
    #[must_use]
    pub fn current(&self) -> u32 {
        self.current
    }

    /// Observation history: (contexts, throughput) per epoch.
    #[must_use]
    pub fn history(&self) -> &[(u32, f64)] {
        &self.history
    }

    /// Feeds one epoch's observed batch throughput (ops per cycle across the
    /// dyad) and returns the next provisioning decision, which the caller is
    /// expected to apply.
    pub fn observe(&mut self, throughput_ops_per_cycle: f64) -> ProvisionDecision {
        let prev = self.history.last().copied();
        self.history.push((self.current, throughput_ops_per_cycle));
        let Some((prev_ctx, prev_tp)) = prev else {
            // First observation: probe upward.
            return self.grow();
        };

        let gain = if prev_tp > 0.0 {
            (throughput_ops_per_cycle - prev_tp) / prev_tp
        } else {
            1.0
        };
        if self.current > prev_ctx {
            // We grew last epoch: did it pay?
            if gain >= self.cfg.min_marginal_gain {
                self.grow()
            } else {
                // Not worth it: retreat to the previous size and hold.
                let back = self.current - prev_ctx;
                self.current = prev_ctx;
                ProvisionDecision::Park(back)
            }
        } else if gain <= -self.cfg.min_marginal_gain {
            // Throughput regressed at constant size (load shift): re-probe.
            self.grow()
        } else {
            ProvisionDecision::Keep
        }
    }

    fn grow(&mut self) -> ProvisionDecision {
        let room = self.cfg.max_contexts.saturating_sub(self.current);
        let add = self.step.min(room);
        if add == 0 {
            return ProvisionDecision::Keep;
        }
        self.current += add;
        ProvisionDecision::Add(add)
    }
}

/// Outcome of adaptively provisioning a live dyad.
#[derive(Debug)]
pub struct LiveProvisionOutcome {
    /// Contexts provisioned when the controller settled.
    pub final_contexts: u32,
    /// (contexts, batch ops/cycle) per epoch.
    pub history: Vec<(u32, f64)>,
    /// Final cycle-simulation metrics.
    pub metrics: duplexity_cpu::dyad::DyadMetrics,
}

/// Schedule parameters for [`provision_dyad_adaptively`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveProvisionSchedule {
    /// Controller targets.
    pub provisioner: ProvisionerConfig,
    /// Contexts activated before the first epoch.
    pub initial_contexts: u32,
    /// Cycles per observation epoch.
    pub epoch_cycles: u64,
    /// Number of epochs to run.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Drives a [`DyadSim`](duplexity_cpu::dyad::DyadSim) in epochs, feeding the
/// [`AdaptiveProvisioner`] the observed batch throughput and applying its
/// decisions: `Add` activates fresh batch threads from `filler_factory`,
/// `Park` retires ready contexts (§IV's HLT parking).
///
/// # Panics
///
/// Panics if `epoch_cycles == 0` or `epochs == 0`.
pub fn provision_dyad_adaptively(
    cfg: duplexity_cpu::dyad::DyadConfig,
    master: Box<dyn duplexity_cpu::op::InstructionStream>,
    mut filler_factory: impl FnMut(usize) -> Box<dyn duplexity_cpu::op::InstructionStream>,
    schedule: &LiveProvisionSchedule,
) -> LiveProvisionOutcome {
    assert!(
        schedule.epoch_cycles > 0 && schedule.epochs > 0,
        "need a positive schedule"
    );
    let mut dyad = duplexity_cpu::dyad::DyadSim::new(cfg, master);
    let mut next_id = 0usize;
    for _ in 0..schedule.initial_contexts {
        dyad.add_batch_thread(next_id, filler_factory(next_id));
        next_id += 1;
    }
    let mut provisioner = AdaptiveProvisioner::new(schedule.provisioner, schedule.initial_contexts);
    let mut rng = duplexity_stats::rng::rng_from_seed(schedule.seed);
    let mut prev_batch_ops = 0u64;
    for epoch in 1..=schedule.epochs {
        dyad.run(epoch as u64 * schedule.epoch_cycles, &mut rng);
        let m = dyad.metrics();
        let batch_ops = m.filler_retired_on_master + m.lender_retired;
        let epoch_tp = (batch_ops - prev_batch_ops) as f64 / schedule.epoch_cycles as f64;
        prev_batch_ops = batch_ops;
        match provisioner.observe(epoch_tp) {
            ProvisionDecision::Add(k) => {
                for _ in 0..k {
                    dyad.add_batch_thread(next_id, filler_factory(next_id));
                    next_id += 1;
                }
            }
            ProvisionDecision::Park(k) => {
                let _ = dyad.park_batch_threads(k as usize);
            }
            ProvisionDecision::Keep => {}
        }
    }
    LiveProvisionOutcome {
        final_contexts: provisioner.current(),
        history: provisioner.history().to_vec(),
        metrics: dyad.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_driven_matches_paper_anchors() {
        let cfg = ProvisionerConfig::default();
        // §IV: "If only batch threads incur µs-scale stalls ... 21 threads
        // are sufficient to occupy the lender-core."
        assert_eq!(recommend_contexts(0.5, &cfg), 21);
        // Light stalls need barely more than the physical contexts.
        assert!(recommend_contexts(0.05, &cfg) <= 10);
        // Hopeless stall fractions clamp to the budget.
        assert_eq!(recommend_contexts(0.99, &cfg), cfg.max_contexts);
    }

    #[test]
    fn recommendation_monotone_in_stall_fraction() {
        let cfg = ProvisionerConfig::default();
        let mut prev = 0;
        for p in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7] {
            let n = recommend_contexts(p, &cfg);
            assert!(n >= prev, "p={p}: {n} < {prev}");
            prev = n;
        }
    }

    /// Feed the controller a saturating-throughput curve: it must climb the
    /// steep part, then stop near the knee and park the overshoot.
    #[test]
    fn adaptive_finds_the_knee() {
        let cfg = ProvisionerConfig::default();
        let mut p = AdaptiveProvisioner::new(cfg, 8);
        // Synthetic dyad response: throughput saturates at ~24 contexts.
        let response = |n: u32| 3.2 * (1.0 - (-(n as f64) / 10.0).exp());
        let mut parked = false;
        for _ in 0..16 {
            let decision = p.observe(response(p.current()));
            if matches!(decision, ProvisionDecision::Park(_)) {
                parked = true;
                break;
            }
        }
        assert!(parked, "controller never stopped growing");
        assert!(
            (16..=40).contains(&p.current()),
            "settled at {} contexts",
            p.current()
        );
    }

    #[test]
    fn adaptive_respects_budget() {
        let cfg = ProvisionerConfig {
            max_contexts: 12,
            ..ProvisionerConfig::default()
        };
        let mut p = AdaptiveProvisioner::new(cfg, 8);
        for _ in 0..10 {
            // Linear response: always worth growing — but capped.
            let _ = p.observe(p.current() as f64);
        }
        assert!(p.current() <= 12);
    }

    #[test]
    fn adaptive_reprobes_after_regression() {
        let cfg = ProvisionerConfig::default();
        let mut p = AdaptiveProvisioner::new(cfg, 8);
        let _ = p.observe(2.0); // initial probe -> Add
        let _ = p.observe(1.9); // growth did not pay -> Park back to 8
        assert_eq!(p.current(), 8);
        // A big drop at constant size (e.g. stall profile shift) re-probes.
        let d = p.observe(1.0);
        assert!(matches!(d, ProvisionDecision::Add(_)), "got {d:?}");
    }

    #[test]
    #[should_panic(expected = "bad initial context count")]
    fn rejects_zero_initial() {
        let _ = AdaptiveProvisioner::new(ProvisionerConfig::default(), 0);
    }

    /// End-to-end: adaptively provisioning a live Duplexity dyad grows the
    /// pool beyond its starting size and ends with healthy batch throughput.
    #[test]
    fn live_provisioning_grows_a_starved_dyad() {
        use duplexity_cpu::dyad::DyadConfig;
        use duplexity_cpu::request::RequestStream;
        use duplexity_workloads::graph::FillerFactory;
        use duplexity_workloads::Workload;

        let cfg = DyadConfig::duplexity();
        let w = Workload::McRouter;
        let master = RequestStream::open_loop(
            w.kernel(3),
            0.5,
            w.nominal_service_us(),
            cfg.machine.cycles_per_us(),
        );
        let fillers = FillerFactory::paper(3);
        let outcome = provision_dyad_adaptively(
            cfg,
            Box::new(master),
            |id| fillers.stream(id),
            &LiveProvisionSchedule {
                provisioner: ProvisionerConfig::default(),
                initial_contexts: 4, // deliberately starved start
                epoch_cycles: 250_000,
                epochs: 10,
                seed: 9,
            },
        );
        assert!(
            outcome.final_contexts > 4,
            "controller never grew: {:?}",
            outcome.history
        );
        assert!(outcome.metrics.filler_retired_on_master > 0);
        assert!(outcome.history.len() == 10);
        // Throughput at the end beats the starved first epoch.
        let first = outcome.history.first().unwrap().1;
        let last = outcome.history.last().unwrap().1;
        assert!(last > first, "no improvement: {first} -> {last}");
    }
}
