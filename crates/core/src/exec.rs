//! Parallel experiment-execution engine.
//!
//! Every experiment driver in this crate evaluates a grid of independent
//! *cells* — one cycle/queueing simulation per (design × workload × load)
//! point — and each cell derives its RNG streams from the experiment seed
//! plus its own grid coordinates (via [`duplexity_stats::rng::derive_stream`]).
//! Because no cell reads another cell's random state, the grid can be
//! evaluated in any order, on any number of worker threads, and produce
//! **bit-identical** results; all cross-cell arithmetic (normalization
//! against the baseline design) happens in a deterministic post-pass on the
//! collected results.
//!
//! [`ExecPool`] is the scheduler behind that contract: a scoped-thread
//! work-stealing runner built only on `std` (`std::thread::scope` plus an
//! atomic work index — no external dependency, since the crates registry is
//! unreachable in some build environments). Results are written into
//! index-addressed slots, so completion order never affects output order.
//!
//! ## Thread-count selection
//!
//! The worker count comes from, in priority order:
//!
//! 1. an explicit `threads` field on the experiment options
//!    ([`crate::experiments::fig5::Fig5Options::threads`],
//!    [`crate::experiments::sweep::SweepOptions::threads`]) when non-zero;
//! 2. the `DUPLEXITY_THREADS` environment variable when set to a positive
//!    integer;
//! 3. [`std::thread::available_parallelism`].
//!
//! ## Progress reporting
//!
//! When enabled, the pool emits one stderr line per completed cell with the
//! cell's wall time and the cumulative completion rate:
//!
//! ```text
//! [fig5/cells] cell 7 done in 412.0 ms (8/45, 2.31 cells/s)
//! ```
//!
//! Progress defaults to on when stderr is a terminal and off otherwise
//! (so `cargo test` output stays quiet); `DUPLEXITY_PROGRESS=1` /
//! `DUPLEXITY_PROGRESS=0` force it either way.

use duplexity_obs::{log_enabled, log_line, PoolReport, WorkerLoad};
use std::io::IsTerminal;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Resolves the default worker count: `DUPLEXITY_THREADS` when it parses as
/// a positive integer, otherwise the machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    match std::env::var("DUPLEXITY_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Resolves the default progress setting: `DUPLEXITY_PROGRESS` when set
/// (anything but `0`/empty enables), otherwise whether stderr is a terminal.
#[must_use]
pub fn default_progress() -> bool {
    match std::env::var("DUPLEXITY_PROGRESS") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => std::io::stderr().is_terminal(),
    }
}

/// A scoped-thread work-stealing cell runner.
///
/// See the [module docs](self) for the determinism contract and the
/// thread-count/progress resolution rules.
#[derive(Debug, Clone)]
pub struct ExecPool {
    threads: usize,
    progress: bool,
}

impl Default for ExecPool {
    fn default() -> Self {
        Self::from_env()
    }
}

impl ExecPool {
    /// Creates a pool with `threads` workers; `0` means "resolve from the
    /// environment" ([`default_threads`]).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: if threads == 0 {
                default_threads()
            } else {
                threads
            },
            progress: default_progress(),
        }
    }

    /// Creates a pool entirely from the environment (`DUPLEXITY_THREADS`,
    /// `DUPLEXITY_PROGRESS`).
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(0)
    }

    /// Overrides progress reporting.
    #[must_use]
    pub fn with_progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// The worker count this pool will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `f(0..n)` across the pool's workers and returns the results
    /// **in index order**, regardless of which worker finished which cell
    /// when.
    ///
    /// `f` must be a pure function of its index (plus captured immutable
    /// state): with that property the output is bit-identical for every
    /// worker count, which the experiment drivers rely on. With one worker
    /// (or `n <= 1`) the cells run inline on the calling thread — this *is*
    /// the serial path, not a simulation of it.
    ///
    /// `label` names the grid in progress lines.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any cell.
    pub fn run<T, F>(&self, label: &str, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_reported(label, n, f).0
    }

    /// [`ExecPool::run`] plus a [`PoolReport`] describing how the run
    /// executed: wall time, per-worker cell counts and busy time.
    ///
    /// The report is wall-clock observability data — it varies run to run
    /// and across machines, so callers must keep it out of deterministic
    /// artifacts (goldens, traces, metrics JSON). When `DUPLEXITY_LOG` is
    /// set, a one-line summary is printed to stderr as the run completes.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any cell.
    pub fn run_reported<T, F>(&self, label: &str, n: usize, f: F) -> (Vec<T>, PoolReport)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut report = PoolReport {
            label: label.to_string(),
            workers: 0,
            cells: n as u64,
            wall_ms: 0.0,
            per_worker: Vec::new(),
        };
        if n == 0 {
            return (Vec::new(), report);
        }
        let start = Instant::now();
        let done = AtomicUsize::new(0);
        let progress = |i: usize, cell_ms: f64| {
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            if self.progress {
                #[allow(clippy::cast_precision_loss)]
                let rate = d as f64 / start.elapsed().as_secs_f64().max(1e-9);
                eprintln!(
                    "[{label}] cell {i} done in {cell_ms:.1} ms ({d}/{n}, {rate:.2} cells/s)"
                );
            }
        };

        let workers = self.threads.min(n);
        report.workers = workers.max(1);
        let results = if workers <= 1 {
            let mut load = WorkerLoad::default();
            let out = (0..n)
                .map(|i| {
                    let t0 = Instant::now();
                    let v = f(i);
                    let cell_ms = t0.elapsed().as_secs_f64() * 1e3;
                    load.cells += 1;
                    load.busy_ms += cell_ms;
                    progress(i, cell_ms);
                    v
                })
                .collect();
            report.per_worker = vec![load];
            out
        } else {
            // Index-addressed result slots plus an atomic work index: workers
            // claim the next unclaimed cell until the grid is exhausted, so a
            // slow cell never stalls the others (work stealing by
            // construction).
            let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
            let loads: Mutex<Vec<WorkerLoad>> = Mutex::new(vec![WorkerLoad::default(); workers]);
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let (slots, loads, next, progress, f) = (&slots, &loads, &next, &progress, &f);
                    scope.spawn(move || {
                        let mut load = WorkerLoad::default();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let t0 = Instant::now();
                            let v = f(i);
                            let cell_ms = t0.elapsed().as_secs_f64() * 1e3;
                            load.cells += 1;
                            load.busy_ms += cell_ms;
                            slots.lock().expect("result slots poisoned")[i] = Some(v);
                            progress(i, cell_ms);
                        }
                        loads.lock().expect("worker loads poisoned")[w] = load;
                    });
                }
            });
            report.per_worker = loads.into_inner().expect("worker loads poisoned");
            slots
                .into_inner()
                .expect("result slots poisoned")
                .into_iter()
                .map(|s| s.expect("every claimed cell stores a result"))
                .collect()
        };
        report.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if log_enabled() {
            log_line(&report.summary_line());
        }
        (results, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_across_worker_counts() {
        let f = |i: usize| i * i;
        let expect: Vec<usize> = (0..23).map(f).collect();
        for threads in [1, 2, 4, 32] {
            let pool = ExecPool::new(threads).with_progress(false);
            assert_eq!(pool.run("test/squares", 23, f), expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let pool = ExecPool::new(4).with_progress(false);
        let out: Vec<u8> = pool.run("test/empty", 0, |_| unreachable!("no cells"));
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let pool = ExecPool::new(16).with_progress(false);
        assert_eq!(pool.run("test/tiny", 2, |i| i + 1), vec![1, 2]);
    }

    #[test]
    fn zero_threads_resolves_to_at_least_one() {
        assert!(ExecPool::new(0).threads() >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn run_reported_accounts_every_cell() {
        for threads in [1, 3] {
            let pool = ExecPool::new(threads).with_progress(false);
            let (out, rep) = pool.run_reported("test/report", 10, |i| i);
            assert_eq!(out, (0..10).collect::<Vec<_>>());
            assert_eq!(rep.cells, 10);
            assert_eq!(rep.workers, threads);
            assert_eq!(rep.per_worker.len(), threads);
            assert_eq!(
                rep.per_worker.iter().map(|w| w.cells).sum::<u64>(),
                10,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_reported_empty_grid_reports_zero() {
        let pool = ExecPool::new(4).with_progress(false);
        let (out, rep): (Vec<u8>, _) = pool.run_reported("test/empty", 0, |_| unreachable!());
        assert!(out.is_empty());
        assert_eq!(rep.cells, 0);
        assert_eq!(rep.utilization(), 0.0);
    }

    #[test]
    fn captured_state_is_shared_immutably() {
        let weights = [3.0f64, 1.5, 0.25, 8.0];
        let pool = ExecPool::new(2).with_progress(false);
        let out = pool.run("test/weights", weights.len(), |i| weights[i] * 2.0);
        assert_eq!(out, vec![6.0, 3.0, 0.5, 16.0]);
    }
}
