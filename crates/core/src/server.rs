//! High-level façade: one design serving one microservice at one load.

use duplexity_cpu::designs::{
    run_design, run_design_traced_stepped, Design, DesignMetrics, Scenario, Stepping,
};
use duplexity_obs::Tracer;
use duplexity_workloads::graph::FillerFactory;
use duplexity_workloads::Workload;

/// A configured single-server (single-dyad) simulation.
///
/// Builder-style: set the load, horizon and seed, then [`ServerSim::run`].
///
/// # Examples
///
/// ```
/// use duplexity::{Design, ServerSim, Workload};
///
/// let metrics = ServerSim::new(Design::Baseline, Workload::WordStem)
///     .load(0.3)
///     .horizon_cycles(500_000)
///     .run();
/// assert!(metrics.wall_cycles > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ServerSim {
    design: Design,
    workload: Workload,
    load: Option<f64>,
    horizon_cycles: u64,
    seed: u64,
    stepping: Stepping,
}

impl ServerSim {
    /// Creates a simulation of `design` serving `workload`, defaulting to
    /// 50% load, a 4M-cycle horizon, seed 42, and quiescence fast-forward
    /// stepping (bit-identical to naive stepping, just faster).
    #[must_use]
    pub fn new(design: Design, workload: Workload) -> Self {
        Self {
            design,
            workload,
            load: Some(0.5),
            horizon_cycles: 4_000_000,
            seed: 42,
            stepping: Stepping::default(),
        }
    }

    /// Sets the offered load as a fraction of capacity.
    ///
    /// # Panics
    ///
    /// Panics if `load` is outside `(0, 1)`.
    #[must_use]
    pub fn load(mut self, load: f64) -> Self {
        assert!(load > 0.0 && load < 1.0, "load must be in (0,1)");
        self.load = Some(load);
        self
    }

    /// Saturates the master-thread (back-to-back requests, §II-B protocol).
    #[must_use]
    pub fn saturated(mut self) -> Self {
        self.load = None;
        self
    }

    /// Sets the simulated horizon in master-core cycles.
    #[must_use]
    pub fn horizon_cycles(mut self, cycles: u64) -> Self {
        self.horizon_cycles = cycles;
        self
    }

    /// Sets the RNG seed (experiments are bit-reproducible per seed).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the cycle-loop stepping strategy. [`Stepping::FastForward`]
    /// (the default) skips provably-quiescent µs-scale stall spans and is
    /// bit-identical to [`Stepping::Naive`]; `Naive` exists for differential
    /// testing and benchmarking.
    #[must_use]
    pub fn stepping(mut self, stepping: Stepping) -> Self {
        self.stepping = stepping;
        self
    }

    /// The design under simulation.
    #[must_use]
    pub fn design(&self) -> Design {
        self.design
    }

    /// The microservice under simulation.
    #[must_use]
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Runs the cycle-level simulation and returns its metrics.
    #[must_use]
    pub fn run(&self) -> DesignMetrics {
        let scenario = Scenario {
            load: self.load,
            service_us: self.workload.nominal_service_us(),
            horizon_cycles: self.horizon_cycles,
            seed: self.seed,
        };
        let fillers = FillerFactory::paper(self.seed);
        run_design_traced_stepped(
            self.design,
            &scenario,
            self.workload.kernel(self.seed),
            |id| fillers.stream(id),
            &Tracer::disabled(),
            self.stepping,
        )
    }

    /// [`ServerSim::run`] with a cycle-domain tracer attached (see
    /// [`run_design_traced_stepped`]). Tracing consumes no RNG draws, so the
    /// returned metrics are bit-identical to [`ServerSim::run`] whether the
    /// tracer is enabled or not.
    #[must_use]
    pub fn run_traced(&self, tracer: &Tracer) -> DesignMetrics {
        let scenario = Scenario {
            load: self.load,
            service_us: self.workload.nominal_service_us(),
            horizon_cycles: self.horizon_cycles,
            seed: self.seed,
        };
        let fillers = FillerFactory::paper(self.seed);
        run_design_traced_stepped(
            self.design,
            &scenario,
            self.workload.kernel(self.seed),
            |id| fillers.stream(id),
            tracer,
            self.stepping,
        )
    }
}

/// A factory producing batch-thread instruction streams by thread id.
pub type BatchThreadFactory =
    Box<dyn FnMut(usize) -> Box<dyn duplexity_cpu::op::InstructionStream>>;

/// A simulation with a user-provided request kernel (and optionally custom
/// batch threads), for workloads beyond the paper's five.
///
/// # Examples
///
/// ```
/// use duplexity::server::CustomSim;
/// use duplexity::Design;
/// use duplexity_cpu::op::{MicroOp, Op, RequestKernel};
/// use duplexity_stats::rng::SimRng;
///
/// /// A toy service: 100 ALU ops then a 1µs remote call.
/// #[derive(Debug)]
/// struct MyService;
/// impl RequestKernel for MyService {
///     fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
///         for i in 0..100 {
///             out.push(MicroOp::new(i * 4, Op::IntAlu));
///         }
///         out.push(MicroOp::new(400, Op::RemoteLoad { latency_us: 1.0 }));
///     }
///     fn nominal_service_us(&self) -> f64 {
///         1.1
///     }
/// }
///
/// let m = CustomSim::new(Design::Duplexity, Box::new(MyService))
///     .load(0.4)
///     .horizon_cycles(400_000)
///     .run();
/// assert!(m.master_retired > 0);
/// ```
pub struct CustomSim {
    design: Design,
    kernel: Box<dyn duplexity_cpu::op::RequestKernel>,
    filler_factory: Option<BatchThreadFactory>,
    load: Option<f64>,
    service_us: f64,
    horizon_cycles: u64,
    seed: u64,
}

impl std::fmt::Debug for CustomSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomSim")
            .field("design", &self.design)
            .field("load", &self.load)
            .field("horizon_cycles", &self.horizon_cycles)
            .finish()
    }
}

impl CustomSim {
    /// Creates a simulation of `design` serving the user's `kernel`.
    /// Defaults: 50% load, 4M-cycle horizon, seed 42, the standard graph
    /// batch threads.
    #[must_use]
    pub fn new(design: Design, kernel: Box<dyn duplexity_cpu::op::RequestKernel>) -> Self {
        let service_us = kernel.nominal_service_us();
        Self {
            design,
            kernel,
            filler_factory: None,
            load: Some(0.5),
            service_us,
            horizon_cycles: 4_000_000,
            seed: 42,
        }
    }

    /// Sets the offered load.
    ///
    /// # Panics
    ///
    /// Panics if `load` is outside `(0, 1)`.
    #[must_use]
    pub fn load(mut self, load: f64) -> Self {
        assert!(load > 0.0 && load < 1.0, "load must be in (0,1)");
        self.load = Some(load);
        self
    }

    /// Saturates the master-thread.
    #[must_use]
    pub fn saturated(mut self) -> Self {
        self.load = None;
        self
    }

    /// Sets the simulated horizon.
    #[must_use]
    pub fn horizon_cycles(mut self, cycles: u64) -> Self {
        self.horizon_cycles = cycles;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Supplies custom batch-thread streams instead of the standard graph
    /// fillers.
    #[must_use]
    pub fn batch_threads(mut self, factory: BatchThreadFactory) -> Self {
        self.filler_factory = Some(factory);
        self
    }

    /// Runs the cycle-level simulation.
    #[must_use]
    pub fn run(self) -> DesignMetrics {
        let scenario = Scenario {
            load: self.load,
            service_us: self.service_us,
            horizon_cycles: self.horizon_cycles,
            seed: self.seed,
        };
        match self.filler_factory {
            Some(mut factory) => run_design(self.design, &scenario, self.kernel, |id| factory(id)),
            None => {
                let fillers = FillerFactory::paper(self.seed);
                run_design(self.design, &scenario, self.kernel, |id| fillers.stream(id))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let s = ServerSim::new(Design::Duplexity, Workload::Rsc)
            .load(0.7)
            .horizon_cycles(123)
            .seed(9);
        assert_eq!(s.design(), Design::Duplexity);
        assert_eq!(s.workload(), Workload::Rsc);
    }

    #[test]
    fn runs_every_design_briefly() {
        for design in Design::ALL {
            let m = ServerSim::new(design, Workload::McRouter)
                .load(0.5)
                .horizon_cycles(400_000)
                .run();
            assert!(m.master_retired > 0, "{design}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            ServerSim::new(Design::Duplexity, Workload::FlannLl)
                .load(0.5)
                .horizon_cycles(300_000)
                .seed(5)
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.master_retired, b.master_retired);
        assert_eq!(a.request_latencies_us, b.request_latencies_us);
    }

    #[test]
    #[should_panic(expected = "load must be in (0,1)")]
    fn rejects_bad_load() {
        let _ = ServerSim::new(Design::Baseline, Workload::WordStem).load(1.5);
    }

    #[test]
    fn custom_sim_with_custom_batch_threads() {
        use duplexity_cpu::op::{InstructionStream, LoopedTrace, MicroOp, Op, RequestKernel};
        use duplexity_stats::rng::SimRng;

        #[derive(Debug)]
        struct TinyService;
        impl RequestKernel for TinyService {
            fn generate(&mut self, _rng: &mut SimRng, out: &mut Vec<MicroOp>) {
                for i in 0..200 {
                    out.push(MicroOp::new(i * 4, Op::IntAlu));
                }
                out.push(MicroOp::new(800, Op::RemoteLoad { latency_us: 1.0 }));
            }
            fn nominal_service_us(&self) -> f64 {
                1.1
            }
        }
        let batch = |id: usize| -> Box<dyn InstructionStream> {
            let base = 0x100_0000 * (id as u64 + 1);
            Box::new(LoopedTrace::new(
                (0..64)
                    .map(|i| MicroOp::new(base + i * 4, Op::IntAlu))
                    .collect(),
            ))
        };
        let m = CustomSim::new(Design::Duplexity, Box::new(TinyService))
            .load(0.4)
            .horizon_cycles(600_000)
            .seed(3)
            .batch_threads(Box::new(batch))
            .run();
        assert!(m.master_retired > 0);
        assert!(m.colocated_retired > 0, "custom batch threads must run");
        assert!(m.morphs > 0);
    }
}
