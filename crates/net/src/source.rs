//! Seeded event generators: a kind + a latency law + a fault plan.
//!
//! An [`EventSource`] is the stream-shaped front end to the fault layer:
//! callers that own their request loop (the cycle simulators, ad-hoc
//! studies) pull [`Event`]s one at a time, while the M/G/1 and experiment
//! layers use [`FaultPlan::sample_event`] directly inside their service
//! closures. Sources seed their RNG through
//! [`derive_stream`], so two sources
//! with the same `(seed, kind, dist, plan)` produce identical streams on
//! any thread.

use crate::event::{Event, EventKind};
use crate::fault::{trace_fault_events, FaultPlan};
use crate::latency::LatencyDist;
use duplexity_obs::Tracer;
use duplexity_stats::rng::{derive_stream, rng_from_seed, SimRng};

/// Running totals over every event a source has produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Events produced (including abandoned ones).
    pub events: u64,
    /// Attempts issued across all events.
    pub attempts: u64,
    /// Legs lost to drops.
    pub dropped_legs: u64,
    /// Legs degraded by the slow-replica mode.
    pub slowed_legs: u64,
    /// Events abandoned after the attempt cap.
    pub failed: u64,
}

/// A deterministic, seedable generator of microsecond events.
#[derive(Debug, Clone)]
pub struct EventSource {
    kind: EventKind,
    dist: LatencyDist,
    plan: FaultPlan,
    rng: SimRng,
    stats: SourceStats,
    tracer: Tracer,
}

impl EventSource {
    /// Builds a source for `kind` events with leg latencies from `dist`
    /// under fault plan `plan`, seeded from `(seed, kind)` via
    /// `derive_stream`.
    #[must_use]
    pub fn new(kind: EventKind, dist: LatencyDist, plan: FaultPlan, seed: u64) -> Self {
        let label = match kind {
            EventKind::RemoteMemory => 0xE0_01,
            EventKind::Nvm => 0xE0_02,
            EventKind::RpcLeg => 0xE0_03,
        };
        Self {
            kind,
            dist,
            plan,
            rng: rng_from_seed(derive_stream(seed, label)),
            stats: SourceStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer. Fault events are stamped in the *event-index*
    /// domain (the ordinal of the event within this source's stream) —
    /// callers that know wall time should trace via
    /// [`trace_fault_events`] themselves instead.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// Remote-memory reads: exponential 1µs RDMA legs (§V).
    #[must_use]
    pub fn remote_memory(plan: FaultPlan, seed: u64) -> Self {
        Self::new(EventKind::RemoteMemory, LatencyDist::rdma(), plan, seed)
    }

    /// Fast-NVM accesses: exponential 8µs Optane legs (§V).
    #[must_use]
    pub fn nvm(plan: FaultPlan, seed: u64) -> Self {
        Self::new(EventKind::Nvm, LatencyDist::nvm(), plan, seed)
    }

    /// RPC fan-out legs: uniform 3–5µs leaf waits (§V, McRouter).
    #[must_use]
    pub fn rpc_leg(plan: FaultPlan, seed: u64) -> Self {
        Self::new(EventKind::RpcLeg, LatencyDist::rpc_leaf(), plan, seed)
    }

    /// The event kind this source produces.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        self.kind
    }

    /// The fault plan in force.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Running totals.
    #[must_use]
    pub fn stats(&self) -> SourceStats {
        self.stats
    }

    /// Produces the next event.
    pub fn next_event(&mut self) -> Event {
        let Self {
            kind,
            dist,
            plan,
            rng,
            stats,
            tracer,
        } = self;
        let ev = plan.sample_event(*kind, rng, |r| dist.sample(r));
        trace_fault_events(&ev, stats.events, tracer);
        stats.events += 1;
        stats.attempts += u64::from(ev.attempts);
        stats.dropped_legs += u64::from(ev.dropped_legs);
        stats.slowed_legs += u64::from(ev.slowed_legs);
        stats.failed += u64::from(!ev.completed);
        ev
    }

    /// Produces an all-of-`n` fan-out: `n` independent legs issued in
    /// parallel, completing when the *slowest* leg completes (the RPC
    /// fan-out barrier). Per-leg faults apply independently; the returned
    /// event's `legs_us` holds each leg's observed latency and `completed`
    /// is true only if every leg completed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn fan_out(&mut self, n: usize) -> Event {
        assert!(n > 0, "fan-out needs at least one leg");
        let mut legs_us = Vec::with_capacity(n);
        let mut attempts = 0u32;
        let mut dropped = 0u32;
        let mut slowed = 0u32;
        let mut completed = true;
        let mut latency = 0.0f64;
        for _ in 0..n {
            let ev = self.next_event();
            latency = latency.max(ev.latency_us);
            attempts += ev.attempts;
            dropped += ev.dropped_legs;
            slowed += ev.slowed_legs;
            completed &= ev.completed;
            legs_us.push(ev.latency_us);
        }
        Event {
            kind: self.kind,
            latency_us: latency,
            attempts,
            legs_us,
            dropped_legs: dropped,
            slowed_legs: slowed,
            completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::RetryPolicy;

    #[test]
    fn sources_are_deterministic_per_seed() {
        let plan = FaultPlan::none()
            .with_drop(0.1)
            .with_retry(RetryPolicy::new(3, 5.0, 1.0, 8.0));
        let mut a = EventSource::remote_memory(plan, 42);
        let mut b = EventSource::remote_memory(plan, 42);
        for _ in 0..500 {
            assert_eq!(a.next_event(), b.next_event());
        }
        assert_eq!(a.stats(), b.stats());
        let mut c = EventSource::remote_memory(plan, 43);
        let da: Vec<f64> = (0..16).map(|_| a.next_event().latency_us).collect();
        let dc: Vec<f64> = (0..16).map(|_| c.next_event().latency_us).collect();
        assert_ne!(da, dc, "different seeds must decorrelate");
    }

    #[test]
    fn kinds_get_distinct_streams() {
        let mut rm = EventSource::remote_memory(FaultPlan::none(), 7);
        let mut nvm = EventSource::nvm(FaultPlan::none(), 7);
        // Same seed, different kinds: latency ratios must not be the
        // constant 8 that identical underlying uniforms would produce.
        let ratios: Vec<f64> = (0..8)
            .map(|_| nvm.next_event().latency_us / rm.next_event().latency_us)
            .collect();
        assert!(ratios.iter().any(|r| (r - 8.0).abs() > 1e-9));
    }

    #[test]
    fn stats_accumulate() {
        let plan = FaultPlan::none()
            .with_drop(0.5)
            .with_retry(RetryPolicy::new(2, 3.0, 0.0, 0.0));
        let mut s = EventSource::nvm(plan, 9);
        for _ in 0..2_000 {
            let _ = s.next_event();
        }
        let st = s.stats();
        assert_eq!(st.events, 2_000);
        assert!(st.attempts > st.events, "retries must add attempts");
        assert!(st.dropped_legs > 0);
        // With p=0.5 and 2 attempts, ~25% of events fail.
        let fail_rate = st.failed as f64 / st.events as f64;
        assert!((fail_rate - 0.25).abs() < 0.05, "fail rate {fail_rate}");
    }

    #[test]
    fn fan_out_is_slowest_leg() {
        let mut s = EventSource::rpc_leg(FaultPlan::none(), 11);
        let ev = s.fan_out(8);
        assert_eq!(ev.legs_us.len(), 8);
        let max = ev.legs_us.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(ev.latency_us, max);
        assert!(ev.completed);
        assert_eq!(s.stats().events, 8);
        // More legs -> stochastically larger barrier latency.
        let mut one = EventSource::rpc_leg(FaultPlan::none(), 12);
        let mut sixteen = EventSource::rpc_leg(FaultPlan::none(), 12);
        let mean1: f64 = (0..400).map(|_| one.fan_out(1).latency_us).sum::<f64>() / 400.0;
        let mean16: f64 = (0..400)
            .map(|_| sixteen.fan_out(16).latency_us)
            .sum::<f64>()
            / 400.0;
        assert!(mean16 > mean1, "fan-out 16 mean {mean16} vs 1 leg {mean1}");
    }
}
