//! The completed-event record produced by the fault layer.

/// The class of microsecond-scale event being modeled (§II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A remote-memory read (single–cache-line RDMA, ~1µs average, §V).
    RemoteMemory,
    /// A fast non-volatile-memory access (~8µs Optane read, §V).
    Nvm,
    /// One leg of a synchronous RPC fan-out (McRouter's 3–5µs leaf wait).
    RpcLeg,
}

impl EventKind {
    /// Short human-readable label for report tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::RemoteMemory => "remote-mem",
            EventKind::Nvm => "nvm",
            EventKind::RpcLeg => "rpc-leg",
        }
    }
}

/// One completed (or abandoned) microsecond event, as observed by the
/// issuing core or request.
///
/// Produced by [`FaultPlan::sample_event`](crate::FaultPlan::sample_event);
/// with a zero-fault plan it is simply the raw latency sample wrapped with
/// `attempts == 1` and `completed == true`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What kind of event this was.
    pub kind: EventKind,
    /// End-to-end latency the issuer observed, µs: elapsed timeouts and
    /// backoffs of failed attempts plus the winning leg of the final
    /// attempt. For an abandoned event (`completed == false`) this is the
    /// total time burned before giving up.
    pub latency_us: f64,
    /// Attempts issued (1 = first try succeeded; capped by
    /// [`RetryPolicy::max_attempts`](crate::RetryPolicy::max_attempts)).
    pub attempts: u32,
    /// Latencies of the surviving legs of the final attempt, µs (two
    /// entries under duplicate-and-race when neither copy was dropped;
    /// empty when the event was abandoned).
    pub legs_us: Vec<f64>,
    /// Legs lost to drops across all attempts.
    pub dropped_legs: u32,
    /// Legs degraded by the slow-replica mode across all attempts.
    pub slowed_legs: u32,
    /// Whether any leg ultimately delivered a response. `false` only when
    /// every leg of every attempt was dropped.
    pub completed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_are_distinct() {
        let labels = [
            EventKind::RemoteMemory.label(),
            EventKind::Nvm.label(),
            EventKind::RpcLeg.label(),
        ];
        assert_eq!(labels.len(), 3);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
    }
}
