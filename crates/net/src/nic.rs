//! NIC budget model for the interconnect utilization case study (§VIII).
//!
//! The paper checks that Duplexity's higher thread-level parallelism does
//! not simply move the bottleneck to the network: it considers a single FDR
//! 4× InfiniBand link, whose NICs impose two ceilings — a data rate
//! (56 Gbit/s) and an I/O-operation rate (90M ops/s) \[124, 125\]. Because the
//! workloads issue single–cache-line remote accesses, they are IOPS-limited.
//! Figure 6 reports per-dyad IOPS utilization; the headline result is that a
//! dyad never needs more than ~7.1% of one FDR port, so 14 dyads can share a
//! NIC.

use serde::{Deserialize, Serialize};

/// An RDMA-capable NIC with data-rate and operation-rate ceilings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicModel {
    /// Peak data rate, bits per second.
    pub data_rate_bps: f64,
    /// Peak I/O operations per second.
    pub max_iops: f64,
}

impl NicModel {
    /// FDR 4× InfiniBand: 56 Gbit/s, 90M ops/s (§V Table I, §VIII).
    #[must_use]
    pub fn fdr_4x() -> Self {
        Self {
            data_rate_bps: 56e9,
            max_iops: 90e6,
        }
    }

    /// EDR 4× InfiniBand (100 Gbit/s, 150M ops/s) for the scalability
    /// discussion \[125, 126\].
    #[must_use]
    pub fn edr_4x() -> Self {
        Self {
            data_rate_bps: 100e9,
            max_iops: 150e6,
        }
    }

    /// IOPS utilization of a traffic source issuing `ops_per_second`
    /// operations of `bytes_per_op` each: the binding constraint is the
    /// larger of the IOPS and bandwidth fractions.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative.
    #[must_use]
    pub fn utilization(&self, ops_per_second: f64, bytes_per_op: f64) -> f64 {
        assert!(
            ops_per_second >= 0.0 && bytes_per_op >= 0.0,
            "negative traffic"
        );
        let iops_frac = ops_per_second / self.max_iops;
        let bw_frac = ops_per_second * bytes_per_op * 8.0 / self.data_rate_bps;
        iops_frac.max(bw_frac)
    }

    /// True if single–cache-line (64B) traffic at `ops_per_second` is
    /// IOPS-limited rather than bandwidth-limited on this NIC.
    #[must_use]
    pub fn iops_limited(&self, bytes_per_op: f64) -> bool {
        // Per-op budget crossover: ops hit the IOPS ceiling before the
        // bandwidth ceiling iff bytes/op < rate/(8*max_iops).
        bytes_per_op < self.data_rate_bps / (8.0 * self.max_iops)
    }

    /// Mean queueing delay at the NIC's IOPS bottleneck, in µs, for
    /// aggregate Poisson traffic of `ops_per_second` (M/D/1 at the port:
    /// each operation occupies the engine for `1/max_iops` seconds).
    ///
    /// Returns `inf` when the port is saturated.
    ///
    /// # Examples
    ///
    /// ```
    /// use duplexity_net::NicModel;
    /// let nic = NicModel::fdr_4x();
    /// // A half-loaded port queues for a fraction of an op time (~11ns).
    /// assert!(nic.queueing_delay_us(45e6) < 0.01);
    /// assert!(nic.queueing_delay_us(95e6).is_infinite());
    /// ```
    #[must_use]
    pub fn queueing_delay_us(&self, ops_per_second: f64) -> f64 {
        let rho = ops_per_second / self.max_iops;
        if rho >= 1.0 {
            return f64::INFINITY;
        }
        let service_us = 1e6 / self.max_iops;
        // Pollaczek–Khinchine with deterministic service (scv = 0).
        rho / (2.0 * (1.0 - rho)) * service_us
    }

    /// How many identical traffic sources (dyads) can share this NIC.
    ///
    /// Returns `usize::MAX` if the per-source utilization is zero.
    #[must_use]
    pub fn sources_per_port(&self, ops_per_second: f64, bytes_per_op: f64) -> usize {
        let u = self.utilization(ops_per_second, bytes_per_op);
        if u <= 0.0 {
            usize::MAX
        } else {
            (1.0 / u).floor() as usize
        }
    }
}

/// Converts remote operations counted over a simulated interval into an
/// operations-per-second rate.
///
/// # Panics
///
/// Panics if `interval_us` is not positive.
#[must_use]
pub fn ops_per_second(remote_ops: u64, interval_us: f64) -> f64 {
    assert!(interval_us > 0.0, "interval must be positive");
    remote_ops as f64 / interval_us * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdr_parameters() {
        let nic = NicModel::fdr_4x();
        assert_eq!(nic.data_rate_bps, 56e9);
        assert_eq!(nic.max_iops, 90e6);
    }

    #[test]
    fn single_line_traffic_is_iops_limited() {
        // §VIII: "As our workloads issue single–cache-line remote accesses,
        // they are IOPS-limited."
        let nic = NicModel::fdr_4x();
        assert!(nic.iops_limited(64.0));
        // Large transfers flip to bandwidth-limited.
        assert!(!nic.iops_limited(4096.0));
    }

    #[test]
    fn utilization_at_iops_ceiling() {
        let nic = NicModel::fdr_4x();
        assert!((nic.utilization(90e6, 64.0) - 1.0).abs() < 1e-9);
        assert!((nic.utilization(9e6, 64.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_binds_for_big_ops() {
        let nic = NicModel::fdr_4x();
        // 4KB ops: 1M ops/s = 32.8 Gbit/s = 58.6% of 56G, vs 1.1% IOPS.
        let u = nic.utilization(1e6, 4096.0);
        assert!((u - 1e6 * 4096.0 * 8.0 / 56e9).abs() < 1e-9);
    }

    #[test]
    fn fourteen_dyads_fit_at_paper_peak() {
        // §VIII: max per-dyad utilization < 7.1% => 14 dyads per port.
        let nic = NicModel::fdr_4x();
        let per_dyad_ops = 0.071 * nic.max_iops;
        assert_eq!(nic.sources_per_port(per_dyad_ops, 64.0), 14);
    }

    #[test]
    fn ops_rate_conversion() {
        // 500 remote ops in 1000µs = 500K ops/s.
        assert!((ops_per_second(500, 1000.0) - 5e5).abs() < 1e-6);
    }

    #[test]
    fn edr_is_bigger() {
        let fdr = NicModel::fdr_4x();
        let edr = NicModel::edr_4x();
        assert!(edr.max_iops > fdr.max_iops);
        assert!(edr.utilization(9e6, 64.0) < fdr.utilization(9e6, 64.0));
    }

    #[test]
    fn queueing_delay_grows_with_load() {
        let nic = NicModel::fdr_4x();
        let lo = nic.queueing_delay_us(9e6);
        let hi = nic.queueing_delay_us(81e6);
        assert!(lo < hi);
        assert!(
            hi < 0.1,
            "even a 90%-loaded port queues well under a µs: {hi}"
        );
        assert_eq!(nic.queueing_delay_us(0.0), 0.0);
    }

    #[test]
    fn zero_traffic() {
        let nic = NicModel::fdr_4x();
        assert_eq!(nic.utilization(0.0, 64.0), 0.0);
        assert_eq!(nic.sources_per_port(0.0, 64.0), usize::MAX);
    }
}
