//! The injectable fault layer: drops, timeouts, retries, tied requests,
//! and degraded replicas.
//!
//! RackSched and the tail-duplication literature (see PAPERS.md) show that
//! µs-scale tails are dominated by inter-server variability and that
//! retry/duplication policy changes the tail by integer factors. A
//! [`FaultPlan`] captures those policies as data so every simulator in the
//! workspace — the cycle-level cores, the M/G/1 queue, the experiment grids
//! — injects the *same* failure model from the *same* RNG streams.
//!
//! Semantics of one event under a plan (all times µs):
//!
//! 1. An **attempt** issues one leg, or two concurrent legs under the
//!    duplicate-and-race (tied-request) policy.
//! 2. Each leg first draws its raw latency, may then be **slowed** (with
//!    probability `slow_prob` its latency is multiplied by `slow_factor` —
//!    the degraded-replica mode), and may then be **dropped** (with
//!    probability `drop_prob` the response is lost).
//! 3. If any leg survives, the event completes after the fastest surviving
//!    leg; timeouts do not cut surviving legs short.
//! 4. If every leg of the attempt was dropped, the issuer waits out
//!    `timeout_us`, sleeps the bounded exponential backoff, and retries —
//!    up to `max_attempts` total attempts, after which the event is
//!    abandoned with the elapsed time charged.
//!
//! RNG discipline: each fault decision is gated on its probability being
//! strictly positive, so [`FaultPlan::none`] consumes **exactly** the draws
//! of the raw latency sample. That invariant is what keeps every pre-fault
//! golden fixture byte-identical (and is pinned by a property test).

use crate::event::{Event, EventKind};
use crate::latency::LatencyDist;
use duplexity_obs::{RemoteKind, TraceEvent, Tracer};
use duplexity_stats::rng::{rng_from_seed, SimRng};
use rand::RngExt;

/// Why [`FaultPlan::effective_moments`] has no closed form for a plan.
///
/// The duplicate-and-race winning-leg law is only tractable when the min of
/// two i.i.d. legs stays in the same family — true for exponentials, false
/// in general. Plans outside that regime get a typed error (and can fall
/// back to [`FaultPlan::effective_moments_mc`]) instead of a panic, so one
/// exotic preset cannot abort a whole sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub enum MomentsError {
    /// Duplicate-and-race with a non-exponential leg law.
    NonExponentialDuplicate(LatencyDist),
    /// Duplicate-and-race combined with the slow-replica mode.
    SlowDuplicate,
}

impl std::fmt::Display for MomentsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MomentsError::NonExponentialDuplicate(leg) => write!(
                f,
                "closed-form duplicate moments require exponential legs, got {leg:?}"
            ),
            MomentsError::SlowDuplicate => {
                f.write_str("closed-form duplicate moments do not support slow replicas")
            }
        }
    }
}

impl std::error::Error for MomentsError {}

/// Maps a net [`EventKind`] onto the observability layer's [`RemoteKind`].
#[must_use]
pub fn obs_kind(kind: EventKind) -> RemoteKind {
    match kind {
        EventKind::RemoteMemory => RemoteKind::RemoteMemory,
        EventKind::Nvm => RemoteKind::Nvm,
        EventKind::RpcLeg => RemoteKind::RpcLeg,
    }
}

/// Emits the fault-related trace events for one sampled [`Event`] at tick
/// `at`: an injection marker when legs were dropped, a retry marker when
/// more than one attempt was issued, and a timeout marker when the event
/// was abandoned. Consumes no RNG; a disabled tracer makes this free.
pub fn trace_fault_events(ev: &Event, at: u64, tracer: &Tracer) {
    let kind = obs_kind(ev.kind);
    if ev.dropped_legs > 0 {
        tracer.emit(|| TraceEvent::FaultInject {
            at,
            kind,
            dropped: ev.dropped_legs,
        });
    }
    if ev.attempts > 1 {
        tracer.emit(|| TraceEvent::FaultRetry {
            at,
            kind,
            attempts: ev.attempts,
        });
    }
    if !ev.completed {
        tracer.emit(|| TraceEvent::FaultTimeout { at, kind });
    }
}

/// Timeout-and-retry policy for dropped legs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed (≥ 1; 1 means no retries).
    pub max_attempts: u32,
    /// Time charged for an attempt whose every leg was dropped, µs.
    pub timeout_us: f64,
    /// Backoff before retry k+1 is `min(backoff_base_us · 2^(k-1),
    /// backoff_cap_us)`; 0 disables backoff.
    pub backoff_base_us: f64,
    /// Upper bound on a single backoff, µs.
    pub backoff_cap_us: f64,
}

impl RetryPolicy {
    /// No retries: one attempt, no timeout or backoff accounting.
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            timeout_us: 0.0,
            backoff_base_us: 0.0,
            backoff_cap_us: 0.0,
        }
    }

    /// Builds a bounded-exponential-backoff retry policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`, any duration is negative or
    /// non-finite, or `backoff_cap_us < backoff_base_us`.
    #[must_use]
    pub fn new(
        max_attempts: u32,
        timeout_us: f64,
        backoff_base_us: f64,
        backoff_cap_us: f64,
    ) -> Self {
        assert!(max_attempts >= 1, "need at least one attempt");
        assert!(
            timeout_us >= 0.0 && timeout_us.is_finite(),
            "timeout must be >= 0"
        );
        assert!(
            backoff_base_us >= 0.0 && backoff_base_us.is_finite(),
            "backoff base must be >= 0"
        );
        assert!(
            backoff_cap_us >= backoff_base_us && backoff_cap_us.is_finite(),
            "backoff cap must be >= base"
        );
        Self {
            max_attempts,
            timeout_us,
            backoff_base_us,
            backoff_cap_us,
        }
    }

    /// Backoff slept after the `failed_attempts`-th consecutive failure, µs:
    /// `min(base · 2^(failed_attempts-1), cap)`.
    #[must_use]
    pub fn backoff_us(&self, failed_attempts: u32) -> f64 {
        if self.backoff_base_us <= 0.0 || failed_attempts == 0 {
            return 0.0;
        }
        let doublings = (failed_attempts - 1).min(1023);
        (self.backoff_base_us * 2.0f64.powi(doublings as i32)).min(self.backoff_cap_us)
    }
}

/// A complete fault-injection configuration for one class of events.
///
/// [`FaultPlan::none`] is the identity plan: events pass through with their
/// raw latency and no extra RNG draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a leg's response is lost.
    pub drop_prob: f64,
    /// What happens after an attempt loses every leg.
    pub retry: RetryPolicy,
    /// Duplicate-and-race: issue two legs per attempt and take the fastest
    /// surviving one (the tied-request policy).
    pub duplicate: bool,
    /// Probability that a leg lands on a degraded replica.
    pub slow_prob: f64,
    /// Latency multiplier for a degraded-replica leg (≥ 1).
    pub slow_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The identity plan: no drops, no retries, no duplication, no slow
    /// replicas.
    #[must_use]
    pub fn none() -> Self {
        Self {
            drop_prob: 0.0,
            retry: RetryPolicy::none(),
            duplicate: false,
            slow_prob: 0.0,
            slow_factor: 1.0,
        }
    }

    /// True if this plan is behaviorally the identity (events pass through
    /// untouched, with zero extra RNG draws).
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0 && !self.duplicate && self.slow_prob == 0.0
    }

    /// Returns a copy with per-leg drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    #[must_use]
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        self.drop_prob = p;
        self
    }

    /// Returns a copy with the given retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns a copy with duplicate-and-race enabled.
    #[must_use]
    pub fn with_duplicate(mut self) -> Self {
        self.duplicate = true;
        self
    }

    /// Returns a copy with the degraded-replica mode configured.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]` or `factor < 1`.
    #[must_use]
    pub fn with_slow_replica(mut self, prob: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "slow probability out of range");
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "slow factor must be >= 1"
        );
        self.slow_prob = prob;
        self.slow_factor = factor;
        self
    }

    /// Runs one event through the fault layer. `leg` draws one raw leg
    /// latency (µs) from the caller's RNG; it is invoked once per issued
    /// leg.
    ///
    /// See the module docs for the exact semantics. With a zero-fault plan
    /// this calls `leg` exactly once and performs no other RNG draws.
    pub fn sample_event<F: FnMut(&mut SimRng) -> f64>(
        &self,
        kind: EventKind,
        rng: &mut SimRng,
        mut leg: F,
    ) -> Event {
        let max_attempts = self.retry.max_attempts.max(1);
        let legs_per_attempt: u32 = if self.duplicate { 2 } else { 1 };
        let mut elapsed = 0.0f64;
        let mut dropped = 0u32;
        let mut slowed = 0u32;
        for attempt in 1..=max_attempts {
            let mut survivors: Vec<f64> = Vec::with_capacity(legs_per_attempt as usize);
            for _ in 0..legs_per_attempt {
                let mut l = leg(rng);
                if self.slow_prob > 0.0 && rng.random::<f64>() < self.slow_prob {
                    l *= self.slow_factor;
                    slowed += 1;
                }
                if self.drop_prob > 0.0 && rng.random::<f64>() < self.drop_prob {
                    dropped += 1;
                } else {
                    survivors.push(l);
                }
            }
            let winner = survivors.iter().copied().fold(f64::INFINITY, f64::min);
            if winner.is_finite() {
                return Event {
                    kind,
                    latency_us: elapsed + winner,
                    attempts: attempt,
                    legs_us: survivors,
                    dropped_legs: dropped,
                    slowed_legs: slowed,
                    completed: true,
                };
            }
            elapsed += self.retry.timeout_us;
            if attempt < max_attempts {
                elapsed += self.retry.backoff_us(attempt);
            }
        }
        Event {
            kind,
            latency_us: elapsed,
            attempts: max_attempts,
            legs_us: Vec::new(),
            dropped_legs: dropped,
            slowed_legs: slowed,
            completed: false,
        }
    }

    /// Closed-form mean and squared coefficient of variation of the
    /// effective event latency under this plan for legs drawn from `leg` —
    /// the service moments the Pollaczek–Khinchine cross-checks feed to
    /// [`Mg1Analytic`](https://docs.rs/duplexity-queueing).
    ///
    /// Exact enumeration over the attempt count: attempt `k` succeeds with
    /// per-attempt probability `1 - r` (where `r = drop_prob` for single
    /// legs and `drop_prob²` for duplicated legs) after accumulating the
    /// timeouts and backoffs of its `k-1` failed predecessors; after
    /// `max_attempts` failures the abandoned event charges the elapsed
    /// time.
    ///
    /// # Errors
    ///
    /// Returns a [`MomentsError`] for plans whose winning-leg law has no
    /// closed form here: duplicate-and-race requires exponential legs and
    /// no slow-replica mode (the min of two i.i.d. exponentials stays
    /// exponential; the min of arbitrary laws does not). Callers that just
    /// need numbers can fall back to
    /// [`FaultPlan::effective_moments_or_mc`].
    pub fn effective_moments(&self, leg: &LatencyDist) -> Result<(f64, f64), MomentsError> {
        // Per-successful-attempt winning-leg moments m1, m2 and per-attempt
        // failure probability r.
        let (r, m1, m2) = if self.duplicate {
            if self.slow_prob > 0.0 {
                return Err(MomentsError::SlowDuplicate);
            }
            let m = match leg {
                LatencyDist::Exponential { mean_us } => *mean_us,
                other => return Err(MomentsError::NonExponentialDuplicate(other.clone())),
            };
            let p = self.drop_prob;
            let both = (1.0 - p) * (1.0 - p);
            let one = 2.0 * p * (1.0 - p);
            let q = both + one;
            if q == 0.0 {
                (1.0, 0.0, 0.0)
            } else {
                // Both legs survive: min of two Exp(m) = Exp(m/2), so
                // E = m/2, E² = 2(m/2)². One survivor: plain Exp(m).
                let m1 = (both * (m / 2.0) + one * m) / q;
                let m2 = (both * (m * m / 2.0) + one * 2.0 * m * m) / q;
                (p * p, m1, m2)
            }
        } else {
            let slow_m1 = 1.0 - self.slow_prob + self.slow_prob * self.slow_factor;
            let slow_m2 =
                1.0 - self.slow_prob + self.slow_prob * self.slow_factor * self.slow_factor;
            (
                self.drop_prob,
                leg.mean_us() * slow_m1,
                leg.second_moment() * slow_m2,
            )
        };
        let (et, et2) = self.attempt_moments(r, m1, m2);
        if et <= 0.0 {
            return Ok((0.0, 0.0));
        }
        Ok((et, ((et2 - et * et) / (et * et)).max(0.0)))
    }

    /// Seeded Monte-Carlo estimate of the effective event mean and SCV:
    /// `samples` events through [`FaultPlan::sample_event`] on a private
    /// RNG derived from `seed`. Works for *every* plan/leg combination,
    /// deterministically — the fallback when [`FaultPlan::effective_moments`]
    /// has no closed form.
    #[must_use]
    pub fn effective_moments_mc(&self, leg: &LatencyDist, seed: u64, samples: u32) -> (f64, f64) {
        let n = samples.max(1);
        let mut rng = rng_from_seed(seed);
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for _ in 0..n {
            let ev = self.sample_event(EventKind::RemoteMemory, &mut rng, |r| leg.sample(r));
            sum += ev.latency_us;
            sum2 += ev.latency_us * ev.latency_us;
        }
        let mean = sum / f64::from(n);
        if mean <= 0.0 {
            return (0.0, 0.0);
        }
        let var = (sum2 / f64::from(n) - mean * mean).max(0.0);
        (mean, var / (mean * mean))
    }

    /// The closed form when it exists, otherwise the seeded Monte-Carlo
    /// fallback (2²⁰ samples) — never panics, so sweep grids can mix
    /// exotic duplicate presets with tractable ones.
    #[must_use]
    pub fn effective_moments_or_mc(&self, leg: &LatencyDist, seed: u64) -> (f64, f64) {
        self.effective_moments(leg)
            .unwrap_or_else(|_| self.effective_moments_mc(leg, seed, 1 << 20))
    }

    /// Conservative upper bound on the effective mean latency for legs with
    /// mean `leg_mean_us` — valid for *any* leg law (duplicate-and-race can
    /// only shorten the winning leg). Used as the saturation guard in
    /// experiment grids.
    #[must_use]
    pub fn effective_mean_bound_us(&self, leg_mean_us: f64) -> f64 {
        let r = if self.duplicate {
            self.drop_prob * self.drop_prob
        } else {
            self.drop_prob
        };
        let m1 = leg_mean_us * (1.0 - self.slow_prob + self.slow_prob * self.slow_factor);
        self.attempt_moments(r, m1, 0.0).0
    }

    /// First two raw moments of the event latency given per-attempt failure
    /// probability `r` and winning-leg moments `(m1, m2)`.
    fn attempt_moments(&self, r: f64, m1: f64, m2: f64) -> (f64, f64) {
        let cap = self.retry.max_attempts.max(1);
        let mut et = 0.0f64;
        let mut et2 = 0.0f64;
        let mut elapsed = 0.0f64; // timeouts + backoffs before attempt k
        let mut pk = 1.0f64; // r^(k-1)
        for k in 1..=cap {
            let w = pk * (1.0 - r);
            et += w * (elapsed + m1);
            et2 += w * (elapsed * elapsed + 2.0 * elapsed * m1 + m2);
            let failed = elapsed + self.retry.timeout_us;
            if k < cap {
                elapsed = failed + self.retry.backoff_us(k);
            } else {
                // Terminal failure after the attempt cap.
                et += pk * r * failed;
                et2 += pk * r * failed * failed;
            }
            pk *= r;
        }
        (et, et2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_stats::rng::rng_from_seed;

    fn exp_leg(mean: f64) -> impl FnMut(&mut SimRng) -> f64 {
        move |rng| LatencyDist::Exponential { mean_us: mean }.sample(rng)
    }

    #[test]
    fn identity_plan_passes_latency_through() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(1);
        for _ in 0..100 {
            let raw = LatencyDist::rdma().sample(&mut a);
            let ev = plan.sample_event(EventKind::RemoteMemory, &mut b, exp_leg(1.0));
            assert_eq!(ev.latency_us, raw);
            assert_eq!(ev.attempts, 1);
            assert!(ev.completed);
        }
        // Both RNGs must be in the same state: the plan drew nothing extra.
        assert_eq!(a, b);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let r = RetryPolicy::new(8, 10.0, 2.0, 16.0);
        assert_eq!(r.backoff_us(1), 2.0);
        assert_eq!(r.backoff_us(2), 4.0);
        assert_eq!(r.backoff_us(3), 8.0);
        assert_eq!(r.backoff_us(4), 16.0);
        assert_eq!(r.backoff_us(5), 16.0);
        assert_eq!(RetryPolicy::none().backoff_us(3), 0.0);
    }

    #[test]
    fn certain_drop_exhausts_attempts_and_charges_time() {
        let plan = FaultPlan::none()
            .with_drop(0.999_999_999)
            .with_retry(RetryPolicy::new(3, 10.0, 2.0, 16.0));
        // With drop probability ~1 every leg is lost (seeded draws cannot
        // all land in the 1e-9 survival window).
        let mut rng = rng_from_seed(3);
        let ev = plan.sample_event(EventKind::Nvm, &mut rng, exp_leg(1.0));
        assert!(!ev.completed);
        assert_eq!(ev.attempts, 3);
        assert_eq!(ev.dropped_legs, 3);
        // 3 timeouts + backoffs 2 and 4 between them.
        assert_eq!(ev.latency_us, 10.0 + 2.0 + 10.0 + 4.0 + 10.0);
    }

    #[test]
    fn duplicate_takes_fastest_leg() {
        let plan = FaultPlan::none().with_duplicate();
        let mut rng = rng_from_seed(4);
        for _ in 0..200 {
            let ev = plan.sample_event(EventKind::RpcLeg, &mut rng, exp_leg(2.0));
            assert_eq!(ev.legs_us.len(), 2);
            assert_eq!(ev.latency_us, ev.legs_us[0].min(ev.legs_us[1]));
        }
    }

    #[test]
    fn slow_replica_inflates_mean() {
        let plan = FaultPlan::none().with_slow_replica(0.5, 10.0);
        let mut rng = rng_from_seed(5);
        let n = 100_000;
        let mut sum = 0.0;
        let mut slowed = 0u32;
        for _ in 0..n {
            let ev = plan.sample_event(EventKind::RemoteMemory, &mut rng, exp_leg(1.0));
            sum += ev.latency_us;
            slowed += ev.slowed_legs;
        }
        let mean = sum / f64::from(n);
        // E = 1µs * (0.5 + 0.5*10) = 5.5µs.
        assert!((mean - 5.5).abs() < 0.15, "mean {mean}");
        let frac = f64::from(slowed) / f64::from(n);
        assert!((frac - 0.5).abs() < 0.02, "slowed fraction {frac}");
    }

    #[test]
    fn effective_moments_match_simulation() {
        let plan = FaultPlan::none()
            .with_drop(0.2)
            .with_retry(RetryPolicy::new(4, 5.0, 1.0, 8.0))
            .with_slow_replica(0.1, 4.0);
        let leg = LatencyDist::Exponential { mean_us: 2.0 };
        let (mean, scv) = plan.effective_moments(&leg).unwrap();
        let mut rng = rng_from_seed(6);
        let n = 400_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let ev = plan.sample_event(EventKind::Nvm, &mut rng, |r| leg.sample(r));
            sum += ev.latency_us;
            sum2 += ev.latency_us * ev.latency_us;
        }
        let emp_mean = sum / f64::from(n);
        let emp_var = sum2 / f64::from(n) - emp_mean * emp_mean;
        let emp_scv = emp_var / (emp_mean * emp_mean);
        assert!(
            (emp_mean - mean).abs() / mean < 0.02,
            "mean sim {emp_mean} vs analytic {mean}"
        );
        assert!(
            (emp_scv - scv).abs() / scv < 0.05,
            "scv sim {emp_scv} vs analytic {scv}"
        );
    }

    #[test]
    fn duplicate_exponential_moments_match_simulation() {
        let plan = FaultPlan::none()
            .with_drop(0.3)
            .with_duplicate()
            .with_retry(RetryPolicy::new(3, 4.0, 0.5, 4.0));
        let leg = LatencyDist::Exponential { mean_us: 3.0 };
        let (mean, _) = plan.effective_moments(&leg).unwrap();
        let mut rng = rng_from_seed(7);
        let n = 400_000;
        let sum: f64 = (0..n)
            .map(|_| {
                plan.sample_event(EventKind::RpcLeg, &mut rng, |r| leg.sample(r))
                    .latency_us
            })
            .sum();
        let emp = sum / f64::from(n);
        assert!(
            (emp - mean).abs() / mean < 0.02,
            "sim {emp} vs analytic {mean}"
        );
    }

    #[test]
    fn mean_bound_dominates_true_mean() {
        let leg = LatencyDist::Exponential { mean_us: 2.0 };
        for plan in [
            FaultPlan::none(),
            FaultPlan::none()
                .with_drop(0.1)
                .with_retry(RetryPolicy::new(4, 6.0, 1.0, 8.0)),
            FaultPlan::none().with_duplicate(),
            FaultPlan::none().with_drop(0.2).with_duplicate(),
        ] {
            let bound = plan.effective_mean_bound_us(leg.mean_us());
            let (mean, _) = plan.effective_moments(&leg).unwrap();
            assert!(
                bound >= mean - 1e-12,
                "{plan:?}: bound {bound} < mean {mean}"
            );
        }
        // Identity plan: the bound is exactly the leg mean.
        assert_eq!(FaultPlan::none().effective_mean_bound_us(2.0), 2.0);
    }

    #[test]
    fn duplicate_moments_reject_non_exponential_legs_as_typed_errors() {
        // Non-exponential duplicate legs: typed error, not a panic.
        let err = FaultPlan::none()
            .with_duplicate()
            .effective_moments(&LatencyDist::rpc_leaf())
            .unwrap_err();
        assert!(matches!(err, MomentsError::NonExponentialDuplicate(_)));
        assert!(err.to_string().contains("require exponential legs"));
        // Duplicate + slow replicas: the other intractable combination.
        let err = FaultPlan::none()
            .with_duplicate()
            .with_slow_replica(0.1, 4.0)
            .effective_moments(&LatencyDist::Exponential { mean_us: 1.0 })
            .unwrap_err();
        assert_eq!(err, MomentsError::SlowDuplicate);
    }

    #[test]
    fn mc_fallback_matches_closed_form_where_both_exist() {
        let plan = FaultPlan::none()
            .with_drop(0.2)
            .with_retry(RetryPolicy::new(4, 5.0, 1.0, 8.0));
        let leg = LatencyDist::Exponential { mean_us: 2.0 };
        let (mean, scv) = plan.effective_moments(&leg).unwrap();
        let (mc_mean, mc_scv) = plan.effective_moments_mc(&leg, 0xFA11, 1 << 18);
        assert!(
            (mc_mean - mean).abs() / mean < 0.03,
            "mc {mc_mean} vs closed {mean}"
        );
        assert!(
            (mc_scv - scv).abs() / scv < 0.08,
            "mc {mc_scv} vs closed {scv}"
        );
        // Determinism: same seed, same estimate.
        assert_eq!(
            plan.effective_moments_mc(&leg, 0xFA11, 1 << 18),
            (mc_mean, mc_scv)
        );
    }

    #[test]
    fn or_mc_never_panics_on_exotic_duplicate_plans() {
        // The exact case that used to abort a sweep: duplicate-and-race
        // over a non-exponential leg law.
        let plan = FaultPlan::none()
            .with_drop(0.1)
            .with_duplicate()
            .with_retry(RetryPolicy::new(3, 6.0, 1.0, 8.0));
        let leg = LatencyDist::rpc_leaf();
        let (mean, scv) = plan.effective_moments_or_mc(&leg, 0xFA12);
        assert!(mean > 0.0 && mean.is_finite());
        assert!(scv >= 0.0 && scv.is_finite());
        // Duplication can only shorten the winning leg, and retries only
        // add time, so the mean stays below the retry-free single-leg mean
        // plus the worst-case retry charge.
        assert!(mean <= plan.effective_mean_bound_us(leg.mean_us()) + 1e-9);
        // Closed-form plans route through the exact path (no MC noise).
        let exact_plan = FaultPlan::none().with_drop(0.2);
        let exact_leg = LatencyDist::Exponential { mean_us: 2.0 };
        assert_eq!(
            exact_plan.effective_moments_or_mc(&exact_leg, 1),
            exact_plan.effective_moments(&exact_leg).unwrap()
        );
    }
}
