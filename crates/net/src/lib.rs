//! Microsecond-event subsystem: deterministic, seedable sources of the
//! µs-scale events the paper is about, with an injectable fault layer.
//!
//! §II of the paper identifies the "killer microseconds": remote memory
//! reads (~1µs RDMA), fast NVM accesses (~8µs Optane), and synchronous RPC
//! fan-out legs (3–5µs leaf waits) — too long for out-of-order execution to
//! hide, too short to context-switch over. This crate gives every simulator
//! in the workspace one shared model of those events:
//!
//! * [`LatencyDist`] — pluggable event-latency distributions (exponential,
//!   lognormal, bimodal, uniform, deterministic, trace replay);
//! * [`FaultPlan`] + [`RetryPolicy`] — an injectable fault layer with
//!   per-leg drop probability, timeout + bounded exponential-backoff retry,
//!   a duplicate-and-race (tied-request) policy, and a degraded
//!   "slow replica" mode;
//! * [`Event`] / [`EventKind`] — the completed-event record the fault layer
//!   produces (winning latency, attempt count, surviving legs);
//! * [`EventSource`] — a seeded generator combining a kind, a distribution,
//!   and a plan, for callers that want a stream rather than a closure;
//! * [`NicModel`] — the FDR 4× InfiniBand NIC budget model used by the
//!   Figure 6 interconnect-utilization case study.
//!
//! Determinism contract: every random decision is drawn from a caller-
//! provided [`SimRng`](duplexity_stats::rng::SimRng), and a zero-fault
//! [`FaultPlan`] consumes *exactly* the RNG draws of the raw latency sample
//! — no more — so threading the fault layer through existing simulators
//! leaves their golden outputs byte-identical, and experiment grids remain
//! bit-identical under `ExecPool` at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod latency;
pub mod nic;
pub mod source;

pub use event::{Event, EventKind};
pub use fault::{obs_kind, trace_fault_events, FaultPlan, MomentsError, RetryPolicy};
pub use latency::LatencyDist;
pub use nic::{ops_per_second, NicModel};
pub use source::{EventSource, SourceStats};
