//! Pluggable latency distributions for microsecond events.
//!
//! A [`LatencyDist`] is a plain enum (rather than a trait object) so fault
//! plans and experiment options can carry it by value, compare it, and
//! compute closed-form moments for the analytic M/G/1 cross-checks. The
//! shapes mirror §V of the paper: exponential RDMA/NVM stalls, the uniform
//! 3–5µs McRouter leaf wait, lognormal service bodies, a bimodal
//! fast/slow-path mix, and empirical trace replay (bootstrap resampling of
//! latencies harvested from the instruction-trace generators in
//! `duplexity-workloads`).

use duplexity_stats::dist::{Distribution, Exponential, LogNormal, Uniform};
use duplexity_stats::rng::SimRng;
use rand::RngExt;

/// A latency distribution for one microsecond-event leg, in µs.
///
/// Invariants (enforced by the constructors and asserted on use): means are
/// strictly positive and finite, probabilities are in `[0, 1]`, and trace
/// samples are non-empty, finite, and non-negative.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyDist {
    /// Exponential with the given mean — the paper's RDMA/NVM stall model.
    Exponential {
        /// Mean latency, µs.
        mean_us: f64,
    },
    /// Lognormal parameterized by its resulting mean and squared
    /// coefficient of variation — the high-variability service shape of
    /// §II-A.
    LogNormal {
        /// Mean latency, µs.
        mean_us: f64,
        /// Squared coefficient of variation (variance / mean²).
        scv: f64,
    },
    /// Uniform on `[low_us, high_us)` — McRouter's 3–5µs leaf wait (§V).
    Uniform {
        /// Inclusive lower bound, µs.
        low_us: f64,
        /// Exclusive upper bound, µs.
        high_us: f64,
    },
    /// Two-phase exponential mixture: a fast common path and a slow tail
    /// path taken with probability `slow_weight` (a hyperexponential).
    Bimodal {
        /// Mean of the fast phase, µs.
        fast_mean_us: f64,
        /// Mean of the slow phase, µs.
        slow_mean_us: f64,
        /// Probability of the slow phase.
        slow_weight: f64,
    },
    /// Point mass: every leg takes exactly `us`.
    Deterministic {
        /// The constant latency, µs.
        us: f64,
    },
    /// Empirical replay: each sample is drawn uniformly (bootstrap) from a
    /// harvested latency trace.
    Trace {
        /// The harvested latencies, µs.
        samples_us: Vec<f64>,
    },
}

impl LatencyDist {
    /// The paper's remote-memory read: exponential, 1µs mean (§V).
    #[must_use]
    pub fn rdma() -> Self {
        LatencyDist::Exponential { mean_us: 1.0 }
    }

    /// The paper's fast-NVM access: exponential, 8µs mean (RSC's Optane
    /// stall, §V).
    #[must_use]
    pub fn nvm() -> Self {
        LatencyDist::Exponential { mean_us: 8.0 }
    }

    /// The paper's RPC fan-out leg: uniform 3–5µs (McRouter's synchronous
    /// leaf KV wait, §V).
    #[must_use]
    pub fn rpc_leaf() -> Self {
        LatencyDist::Uniform {
            low_us: 3.0,
            high_us: 5.0,
        }
    }

    /// Builds a trace-replay distribution from harvested latencies.
    ///
    /// # Panics
    ///
    /// Panics if `samples_us` is empty or contains a negative or non-finite
    /// value.
    #[must_use]
    pub fn from_trace(samples_us: Vec<f64>) -> Self {
        assert!(
            !samples_us.is_empty(),
            "trace must have at least one sample"
        );
        assert!(
            samples_us.iter().all(|s| s.is_finite() && *s >= 0.0),
            "trace samples must be finite and non-negative"
        );
        LatencyDist::Trace { samples_us }
    }

    /// Draws one leg latency, µs.
    ///
    /// RNG-draw discipline (load-bearing for golden-output stability):
    /// exponential and uniform consume one draw, lognormal and bimodal two,
    /// deterministic zero, and trace replay one index draw.
    ///
    /// # Panics
    ///
    /// Panics if the variant's invariants (documented on [`LatencyDist`])
    /// are violated.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            LatencyDist::Exponential { mean_us } => Exponential::new(*mean_us).sample(rng),
            LatencyDist::LogNormal { mean_us, scv } => {
                LogNormal::from_mean_scv(*mean_us, *scv).sample(rng)
            }
            LatencyDist::Uniform { low_us, high_us } => Uniform::new(*low_us, *high_us).sample(rng),
            LatencyDist::Bimodal {
                fast_mean_us,
                slow_mean_us,
                slow_weight,
            } => {
                assert!(
                    (0.0..=1.0).contains(slow_weight),
                    "slow_weight must be a probability"
                );
                let slow = rng.random::<f64>() < *slow_weight;
                let mean = if slow { *slow_mean_us } else { *fast_mean_us };
                Exponential::new(mean).sample(rng)
            }
            LatencyDist::Deterministic { us } => {
                assert!(us.is_finite() && *us >= 0.0, "latency must be >= 0");
                *us
            }
            LatencyDist::Trace { samples_us } => {
                assert!(!samples_us.is_empty(), "trace must have samples");
                samples_us[rng.random_range(0..samples_us.len())]
            }
        }
    }

    /// Mean latency, µs.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        match self {
            LatencyDist::Exponential { mean_us } | LatencyDist::LogNormal { mean_us, .. } => {
                *mean_us
            }
            LatencyDist::Uniform { low_us, high_us } => 0.5 * (low_us + high_us),
            LatencyDist::Bimodal {
                fast_mean_us,
                slow_mean_us,
                slow_weight,
            } => (1.0 - slow_weight) * fast_mean_us + slow_weight * slow_mean_us,
            LatencyDist::Deterministic { us } => *us,
            LatencyDist::Trace { samples_us } => {
                samples_us.iter().sum::<f64>() / samples_us.len() as f64
            }
        }
    }

    /// Second raw moment `E[L²]`, µs².
    ///
    /// Used by the Pollaczek–Khinchine cross-checks; computed in O(n) for
    /// trace replay.
    #[must_use]
    pub fn second_moment(&self) -> f64 {
        match self {
            LatencyDist::Exponential { mean_us } => 2.0 * mean_us * mean_us,
            LatencyDist::LogNormal { mean_us, scv } => mean_us * mean_us * (1.0 + scv),
            LatencyDist::Uniform { low_us, high_us } => {
                // E[L²] = (h³ - l³) / (3 (h - l)).
                (high_us.powi(3) - low_us.powi(3)) / (3.0 * (high_us - low_us))
            }
            LatencyDist::Bimodal {
                fast_mean_us,
                slow_mean_us,
                slow_weight,
            } => {
                (1.0 - slow_weight) * 2.0 * fast_mean_us * fast_mean_us
                    + slow_weight * 2.0 * slow_mean_us * slow_mean_us
            }
            LatencyDist::Deterministic { us } => us * us,
            LatencyDist::Trace { samples_us } => {
                samples_us.iter().map(|s| s * s).sum::<f64>() / samples_us.len() as f64
            }
        }
    }

    /// Squared coefficient of variation (variance / mean²); 0 for a
    /// zero-mean distribution.
    #[must_use]
    pub fn scv(&self) -> f64 {
        let m = self.mean_us();
        if m == 0.0 {
            return 0.0;
        }
        (self.second_moment() - m * m) / (m * m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplexity_stats::rng::rng_from_seed;

    fn empirical_mean(d: &LatencyDist, n: usize, seed: u64) -> f64 {
        let mut rng = rng_from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn presets_match_paper_parameters() {
        assert_eq!(LatencyDist::rdma().mean_us(), 1.0);
        assert_eq!(LatencyDist::nvm().mean_us(), 8.0);
        assert_eq!(LatencyDist::rpc_leaf().mean_us(), 4.0);
    }

    #[test]
    fn sample_means_track_analytic_means() {
        let dists = [
            LatencyDist::rdma(),
            LatencyDist::nvm(),
            LatencyDist::rpc_leaf(),
            LatencyDist::LogNormal {
                mean_us: 4.0,
                scv: 0.5,
            },
            LatencyDist::Bimodal {
                fast_mean_us: 1.0,
                slow_mean_us: 20.0,
                slow_weight: 0.05,
            },
            LatencyDist::Deterministic { us: 3.0 },
        ];
        for (i, d) in dists.iter().enumerate() {
            let m = empirical_mean(d, 200_000, 100 + i as u64);
            let a = d.mean_us();
            assert!((m - a).abs() / a < 0.05, "{d:?}: empirical {m} vs {a}");
        }
    }

    #[test]
    fn trace_replay_bootstraps_its_samples() {
        let trace = vec![1.0, 2.0, 4.0, 8.0];
        let d = LatencyDist::from_trace(trace.clone());
        assert!((d.mean_us() - 3.75).abs() < 1e-12);
        let mut rng = rng_from_seed(7);
        for _ in 0..1_000 {
            assert!(trace.contains(&d.sample(&mut rng)));
        }
        let m = empirical_mean(&d, 200_000, 8);
        assert!((m - 3.75).abs() < 0.05, "bootstrap mean {m}");
    }

    #[test]
    fn second_moments_are_consistent_with_scv() {
        let d = LatencyDist::Bimodal {
            fast_mean_us: 1.0,
            slow_mean_us: 10.0,
            slow_weight: 0.1,
        };
        let m = d.mean_us();
        let var = d.second_moment() - m * m;
        assert!((d.scv() - var / (m * m)).abs() < 1e-12);
        // Hyperexponential mixtures are more variable than exponential.
        assert!(d.scv() > 1.0);
        assert_eq!(LatencyDist::Deterministic { us: 5.0 }.scv(), 0.0);
        assert!((LatencyDist::rdma().scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_rejected() {
        let _ = LatencyDist::from_trace(vec![]);
    }
}
