//! Standing perf-trajectory benchmark for the cycle simulator.
//!
//! ```text
//! bench [--smoke] [--seed N] [--threads N] [--out FILE] [--guard BASELINE]
//! ```
//!
//! Times a stall-heavy Figure 5 configuration twice in the same process —
//! once with [`Stepping::Naive`] (step every cycle) and once with
//! [`Stepping::FastForward`] (skip provably quiescent spans) — asserts the
//! two grids are cell-for-cell identical, then times the fault-policy sweep,
//! the cluster balancing sweep, and the duplication/hedging sweep once
//! each. Two event-core sections follow: requests/sec per engine (legacy
//! Lindley loop, event heap, event wheel; cluster and hedged cells) and the
//! legacy-vs-fast cluster-sweep path (timing wheel + batched RNG +
//! within-cell parallel replications). An `obs` section times latency
//! collection through the streaming [`LatencySketch`] against the exact
//! sorted-vector estimator over one deterministic stream and records the
//! sketch's p99 relative error. Writes the measurements as
//! JSON (default `BENCH_cycles.json`) with a [`RunManifest`] sidecar so
//! CI can archive a perf trajectory across commits.
//!
//! A `cache` section times the standing fig5 + cluster-sweep grids twice
//! through the content-addressed cell cache — once cold (empty directory)
//! and once warm — asserts the two artifacts are byte-identical, and
//! asserts the warm pass is at least [`MIN_WARM_SPEEDUP`]x faster.
//!
//! `--guard BASELINE` compares measured metrics against the committed
//! baseline JSON (`BENCH_baseline.json`): a `metrics` object keyed by
//! report path (e.g. `engine_core.wheel_vs_heap_rps_ratio`), each entry
//! carrying the healthy `value` and an optional per-metric `tolerance`
//! (default [`GUARD_TOLERANCE`]). The build fails, naming the offending
//! metric, if any measurement lands below `(1 - tolerance) * value`. All
//! guarded metrics are ratios measured within one process, not absolute
//! rates, so the baselines travel across CI hosts.
//!
//! `--smoke` shrinks horizons for a fast CI pass; `--threads 1` (the
//! default here) keeps per-mode wall times comparable across machines with
//! different core counts. The speedup is end-to-end: it includes the
//! never-skipped lender-reference calibration and the queueing runs both
//! modes share, so it under-states the raw cycle-loop gain.

use duplexity::experiments::cluster_sweep::{cluster_sweep, ClusterSweepOptions};
use duplexity::experiments::fault_sweep::{fault_sweep, FaultSweepOptions};
use duplexity::experiments::fig5::{run_fig5, Fig5Cell, Fig5Options};
use duplexity::experiments::hedge_sweep::hedge_sweep;
use duplexity::experiments::rack_sweep::rack_sweep;
use duplexity::{CellCache, Design, Workload};
use duplexity_bench::Fidelity;
use duplexity_cpu::designs::Stepping;
use duplexity_obs::{manifest_path, LatencySketch, RunManifest, Tracer};
use duplexity_queueing::cluster::{
    try_simulate_cluster, try_simulate_cluster_hedged, BalancerPolicy, ClusterEngine,
    ClusterOptions, DuplicationPolicy,
};
use duplexity_queueing::des::Mg1Options;
use duplexity_queueing::eventcore::EventQueueKind;
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::quantile::QuantileEstimator;
use duplexity_stats::rng::{rng_from_seed, SimRng};
use serde::{Serialize, Value};
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ModeTiming {
    wall_s: f64,
    cells_per_sec: f64,
    sim_cycles_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Fig5Bench {
    designs: Vec<Design>,
    workloads: Vec<Workload>,
    loads: Vec<f64>,
    horizon_cycles: u64,
    cells: usize,
    /// Cycle-loop iterations a naive pass performs: one horizon per grid
    /// cell, a third per calibration pair, and the lender-reference runs
    /// (half a horizon for the pooled lender, a quarter for the lone batch
    /// thread).
    nominal_sim_cycles: u64,
    naive: ModeTiming,
    fast_forward: ModeTiming,
    speedup: f64,
    results_identical: bool,
}

#[derive(Debug, Serialize)]
struct FaultSweepBench {
    points: usize,
    wall_s: f64,
    points_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct ClusterSweepBench {
    points: usize,
    saturated: usize,
    wall_s: f64,
    points_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct HedgeSweepBench {
    points: usize,
    saturated: usize,
    /// Duplicate copies issued across the grid — a sanity signal that the
    /// timed work actually exercised the duplication machinery.
    dup_copies: u64,
    wall_s: f64,
    points_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct RackSweepBench {
    points: usize,
    saturated: usize,
    /// Successful steals across the grid — a sanity signal that the timed
    /// work exercised the work-stealing machinery, not just fresh dispatch.
    steals: u64,
    wall_s: f64,
    points_per_sec: f64,
}

/// One timed engine run over a fixed single-cell configuration.
#[derive(Debug, Serialize)]
struct EngineTiming {
    engine: String,
    requests: u64,
    wall_s: f64,
    requests_per_sec: f64,
}

/// Requests/sec per future-event-set on one fixed cell, with and without
/// duplication, plus the wheel:heap throughput ratio the CI guard tracks.
#[derive(Debug, Serialize)]
struct EngineCoreBench {
    servers: usize,
    load: f64,
    samples_per_run: usize,
    /// Zero-duplication cell: legacy Lindley loop, event heap, event wheel.
    cluster: Vec<EngineTiming>,
    /// Hedged cell (`hedge10`): event heap vs event wheel.
    hedged: Vec<EngineTiming>,
    /// Wheel:heap throughput ratio over the combined cluster + hedged
    /// work (total heap wall / total wheel wall) — a machine-relative
    /// number (both runs share the process and inputs), so a committed
    /// baseline of it travels across CI hosts.
    wheel_vs_heap_rps_ratio: f64,
}

/// The legacy sweep path (Lindley, one worker, one pass per cell) against
/// the fast path (timing wheel + batched RNG + within-cell parallel
/// replications) over the identical grid.
#[derive(Debug, Serialize)]
struct SweepPathBench {
    points: usize,
    requests: u64,
    /// Cores the host actually exposes. Within-cell parallelism can only
    /// convert replications into wall-clock speedup up to this bound —
    /// on a 1-core CI runner the fast path's thread fan-out is pure
    /// overhead and the recorded speedup reflects the serial engines.
    available_cores: usize,
    legacy_wall_s: f64,
    legacy_requests_per_sec: f64,
    fast_threads: usize,
    fast_replications: usize,
    fast_wall_s: f64,
    fast_requests_per_sec: f64,
    speedup: f64,
}

/// Collection overhead of the streaming tail sketch against the exact
/// sorted-vector estimator, over one deterministic exponential stream.
#[derive(Debug, Serialize)]
struct ObsBench {
    samples: usize,
    /// Exact path: `Vec` push + lazy sort at query time.
    vec_wall_s: f64,
    vec_msamples_per_sec: f64,
    /// Sketch path: log-bucket index + counter increment per sample.
    sketch_wall_s: f64,
    sketch_msamples_per_sec: f64,
    /// Sketch:vec collection throughput ratio (same stream, same process).
    sketch_vs_vec_ratio: f64,
    /// |sketch p99 − exact p99| / exact p99 — must stay within the
    /// sketch's documented relative-accuracy bound.
    p99_relative_error: f64,
}

/// Cold-vs-warm timing of the standing fig5 + cluster-sweep grids through
/// the content-addressed cell cache: identical options, one empty cache
/// directory, two passes in the same process.
#[derive(Debug, Serialize)]
struct CellCacheBench {
    /// Cells the two grids probe (fig5 loads + cluster sweep points).
    cells: u64,
    cold_wall_s: f64,
    warm_wall_s: f64,
    /// cold:warm wall ratio — the headline the guard tracks.
    warm_speedup: f64,
    cold_misses: u64,
    warm_hits: u64,
    bytes_written: u64,
    /// Whether the warm artifacts were byte-identical to the cold ones
    /// (also asserted, so a report ever carrying `false` never ships).
    identical: bool,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    threads: usize,
    smoke: bool,
    fig5: Fig5Bench,
    fault_sweep: FaultSweepBench,
    cluster_sweep: ClusterSweepBench,
    hedge_sweep: HedgeSweepBench,
    rack_sweep: RackSweepBench,
    engine_core: EngineCoreBench,
    sweep_path: SweepPathBench,
    obs: ObsBench,
    cache: CellCacheBench,
}

/// Fractional regression a guarded metric tolerates before failing the
/// build, when its baseline entry does not carry its own `tolerance`.
const GUARD_TOLERANCE: f64 = 0.15;

/// Minimum cold:warm speedup the cell-cache section must demonstrate.
const MIN_WARM_SPEEDUP: f64 = 5.0;

/// Numeric leaf of the baseline JSON, whatever integer/float shape the
/// vendored parser gave it.
fn value_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Times one engine over the fixed benchmark cell and returns its
/// requests/sec entry.
fn time_engine(
    label: &str,
    engine: ClusterEngine,
    plan: &DuplicationPolicy,
    servers: usize,
    load: f64,
    samples: usize,
    seed: u64,
) -> EngineTiming {
    let mean_service = 2.0;
    let lambda = servers as f64 * load / mean_service;
    let opts = ClusterOptions {
        servers,
        max_samples: samples,
        warmup: 1_000,
        // Disable early stopping: every engine must do identical work.
        max_relative_error: 0.001,
        seed,
        event_queue: match engine {
            ClusterEngine::Event(kind) => kind,
            ClusterEngine::Lindley => EventQueueKind::default(),
        },
        ..ClusterOptions::default()
    };
    let service = Exponential::new(mean_service);
    // Best of three passes: the work is deterministic, so the fastest wall
    // is the least scheduler-perturbed measurement (matters for the ratio
    // the CI guard compares).
    let mut requests = 0u64;
    let mut wall_s = f64::INFINITY;
    for _ in 0..3 {
        let mut svc = |rng: &mut SimRng| service.sample(rng);
        let mut balancer = BalancerPolicy::Jsq.build();
        let t = Instant::now();
        requests = match engine {
            ClusterEngine::Lindley => {
                try_simulate_cluster(
                    lambda,
                    &mut svc,
                    balancer.as_mut(),
                    &opts,
                    &Tracer::disabled(),
                )
                .expect("stable bench cell")
                .samples as u64
            }
            ClusterEngine::Event(_) => {
                try_simulate_cluster_hedged(
                    lambda,
                    &mut svc,
                    balancer.as_mut(),
                    plan,
                    &opts,
                    &Tracer::disabled(),
                )
                .expect("stable bench cell")
                .cluster
                .samples as u64
            }
        };
        wall_s = wall_s.min(t.elapsed().as_secs_f64());
    }
    EngineTiming {
        engine: label.to_string(),
        requests,
        wall_s,
        requests_per_sec: requests as f64 / wall_s.max(1e-12),
    }
}

/// Times latency collection through the exact estimator and the streaming
/// sketch over the same deterministic exponential stream, best of three
/// passes each. The p99 error check doubles as an end-to-end accuracy
/// probe on a stream the unit tests never see.
fn bench_obs(seed: u64, samples: usize) -> ObsBench {
    let service = Exponential::new(2.0);
    let draw = |n: usize| {
        let mut rng = rng_from_seed(seed ^ 0x0b5);
        (0..n).map(|_| service.sample(&mut rng)).collect::<Vec<_>>()
    };
    let stream = draw(samples);

    let mut vec_wall = f64::INFINITY;
    let mut exact_p99 = 0.0;
    for _ in 0..3 {
        let t = Instant::now();
        let mut q = QuantileEstimator::with_capacity(stream.len());
        for &v in &stream {
            q.record(v);
        }
        exact_p99 = q.quantile(0.99).expect("non-empty stream");
        vec_wall = vec_wall.min(t.elapsed().as_secs_f64());
    }

    let mut sketch_wall = f64::INFINITY;
    let mut sketch_p99 = 0.0;
    for _ in 0..3 {
        let t = Instant::now();
        let mut s = LatencySketch::new();
        for &v in &stream {
            s.record(v);
        }
        sketch_p99 = s.quantile(0.99).expect("non-empty stream");
        sketch_wall = sketch_wall.min(t.elapsed().as_secs_f64());
    }

    ObsBench {
        samples,
        vec_wall_s: vec_wall,
        vec_msamples_per_sec: samples as f64 / vec_wall.max(1e-12) / 1e6,
        sketch_wall_s: sketch_wall,
        sketch_msamples_per_sec: samples as f64 / sketch_wall.max(1e-12) / 1e6,
        sketch_vs_vec_ratio: vec_wall / sketch_wall.max(1e-12),
        p99_relative_error: (sketch_p99 - exact_p99).abs() / exact_p99.max(1e-12),
    }
}

fn stall_heavy_opts(seed: u64, threads: usize, horizon: u64, stepping: Stepping) -> Fig5Options {
    Fig5Options {
        // Baseline only: the paper's motivating configuration, where the
        // master-core burns thousands of cycles per µs-scale stall doing
        // nothing — exactly the span fast-forward folds away. (Baseline is
        // also the normalization reference, so it is a valid 1-design grid.)
        designs: vec![Design::Baseline],
        workloads: vec![Workload::McRouter],
        loads: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        horizon_cycles: horizon,
        seed,
        queue: Mg1Options {
            max_samples: 20_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        stepping,
        ..Fig5Options::default()
    }
}

/// Returns a description of the first naive/fast-forward disagreement, or
/// `None` when the grids are cell-for-cell identical. Naming the cell and
/// field turns a bit-identity violation from a yes/no verdict into a
/// reproducible bug report.
fn first_mismatch(a: &[Fig5Cell], b: &[Fig5Cell]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("grid sizes differ: {} vs {}", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(b) {
        let cell = format!(
            "{} / {} @ load {:.2}",
            x.design.name(),
            y.workload.name(),
            x.load
        );
        if x.design != y.design || x.workload != y.workload || x.load != y.load {
            return Some(format!(
                "grid order diverged at {cell} vs {} / {} @ load {:.2}",
                y.design.name(),
                y.workload.name(),
                y.load
            ));
        }
        let fields: [(&str, f64, f64); 8] = [
            ("utilization", x.utilization, y.utilization),
            (
                "perf_density_norm",
                x.perf_density_norm,
                y.perf_density_norm,
            ),
            ("energy_norm", x.energy_norm, y.energy_norm),
            ("p99_us", x.p99_us, y.p99_us),
            ("iso_p99_us", x.iso_p99_us, y.iso_p99_us),
            ("stp_norm", x.stp_norm, y.stp_norm),
            ("service_slowdown", x.service_slowdown, y.service_slowdown),
            (
                "remote_ops_per_us",
                x.remote_ops_per_us,
                y.remote_ops_per_us,
            ),
        ];
        for (name, naive, fast) in fields {
            if naive.to_bits() != fast.to_bits() {
                return Some(format!(
                    "{cell}: {name} naive {naive:?} vs fast-forward {fast:?}"
                ));
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let smoke = has("--smoke");
    let seed: u64 = arg_after("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let threads: usize = arg_after("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out = arg_after("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_cycles.json".to_string());

    let horizon: u64 = if smoke { 600_000 } else { 3_000_000 };
    let opts_of = |stepping| stall_heavy_opts(seed, threads, horizon, stepping);
    let grid = opts_of(Stepping::Naive);
    let cells = grid.loads.len() * grid.workloads.len() * grid.designs.len();
    let pairs = grid.workloads.len() * grid.designs.len();
    let nominal_sim_cycles =
        cells as u64 * horizon + pairs as u64 * (horizon / 3) + horizon / 2 + horizon / 4;

    eprintln!("bench: fig5 stall-heavy grid, naive stepping ({cells} cells, horizon {horizon})");
    let t0 = Instant::now();
    let naive_cells = run_fig5(&opts_of(Stepping::Naive));
    let naive_s = t0.elapsed().as_secs_f64();

    eprintln!("bench: fig5 stall-heavy grid, fast-forward stepping");
    let t1 = Instant::now();
    let fast_cells = run_fig5(&opts_of(Stepping::FastForward));
    let fast_s = t1.elapsed().as_secs_f64();

    let mismatch = first_mismatch(&naive_cells, &fast_cells);
    let identical = mismatch.is_none();
    assert!(
        identical,
        "fast-forward diverged from naive stepping — bit-identity contract broken at {}",
        mismatch.as_deref().unwrap_or("unknown cell")
    );

    let timing = |wall_s: f64| ModeTiming {
        wall_s,
        cells_per_sec: cells as f64 / wall_s.max(1e-12),
        sim_cycles_per_sec: nominal_sim_cycles as f64 / wall_s.max(1e-12),
    };
    let speedup = naive_s / fast_s.max(1e-12);

    eprintln!("bench: fault-policy sweep");
    let mut sweep_opts = FaultSweepOptions {
        seed,
        ..FaultSweepOptions::default()
    };
    if smoke {
        sweep_opts.loads = vec![0.5];
        sweep_opts.queue = Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            ..Mg1Options::default()
        };
    }
    let t2 = Instant::now();
    let points = fault_sweep(&sweep_opts);
    let sweep_s = t2.elapsed().as_secs_f64();

    eprintln!("bench: cluster balancing sweep");
    let fid = if smoke {
        Fidelity::Bench
    } else {
        Fidelity::Quick
    };
    let mut cluster_opts = fid.cluster_sweep_options(seed);
    cluster_opts.threads = threads;
    let t3 = Instant::now();
    let cluster_points = cluster_sweep(&cluster_opts);
    let cluster_s = t3.elapsed().as_secs_f64();

    eprintln!("bench: duplication/hedging sweep");
    let mut hedge_opts = fid.hedge_sweep_options(seed);
    hedge_opts.threads = threads;
    let t4 = Instant::now();
    let hedge_points = hedge_sweep(&hedge_opts);
    let hedge_s = t4.elapsed().as_secs_f64();

    eprintln!("bench: two-level rack sweep");
    let mut rack_opts = fid.rack_sweep_options(seed);
    rack_opts.threads = threads;
    let t4b = Instant::now();
    let rack_points = rack_sweep(&rack_opts);
    let rack_s = t4b.elapsed().as_secs_f64();

    eprintln!("bench: event-core engines (heap vs wheel, cluster + hedged)");
    let (eng_servers, eng_load) = (16usize, 0.6);
    let eng_samples = if smoke { 200_000 } else { 400_000 };
    let none = DuplicationPolicy::none();
    let hedge_plan = DuplicationPolicy::hedge(10.0);
    let cluster_runs = vec![
        time_engine(
            "lindley",
            ClusterEngine::Lindley,
            &none,
            eng_servers,
            eng_load,
            eng_samples,
            seed,
        ),
        time_engine(
            "event_heap",
            ClusterEngine::Event(EventQueueKind::Heap),
            &none,
            eng_servers,
            eng_load,
            eng_samples,
            seed,
        ),
        time_engine(
            "event_wheel",
            ClusterEngine::Event(EventQueueKind::Wheel),
            &none,
            eng_servers,
            eng_load,
            eng_samples,
            seed,
        ),
    ];
    let hedged_runs = vec![
        time_engine(
            "event_heap",
            ClusterEngine::Event(EventQueueKind::Heap),
            &hedge_plan,
            eng_servers,
            eng_load,
            eng_samples,
            seed,
        ),
        time_engine(
            "event_wheel",
            ClusterEngine::Event(EventQueueKind::Wheel),
            &hedge_plan,
            eng_servers,
            eng_load,
            eng_samples,
            seed,
        ),
    ];
    let total_wall = |runs: &[&[EngineTiming]], engine: &str| -> f64 {
        runs.iter()
            .flat_map(|r| r.iter())
            .filter(|r| r.engine == engine)
            .map(|r| r.wall_s)
            .sum()
    };
    let both: [&[EngineTiming]; 2] = [&cluster_runs, &hedged_runs];
    let wheel_vs_heap =
        total_wall(&both, "event_heap") / total_wall(&both, "event_wheel").max(1e-12);
    let engine_core = EngineCoreBench {
        servers: eng_servers,
        load: eng_load,
        samples_per_run: eng_samples,
        cluster: cluster_runs,
        hedged: hedged_runs,
        wheel_vs_heap_rps_ratio: wheel_vs_heap,
    };

    eprintln!("bench: cluster sweep, legacy path vs wheel + replications");
    let sweep_grid = |engine, threads, replications| ClusterSweepOptions {
        designs: vec![Design::Baseline],
        policies: vec![BalancerPolicy::Jsq],
        server_counts: vec![16],
        loads: vec![0.4, 0.6],
        calibration_cycles: 200_000,
        seed,
        queue: Mg1Options {
            max_samples: if smoke { 100_000 } else { 400_000 },
            warmup: 1_000,
            // Full-length cells: the two paths must do identical work.
            max_relative_error: 0.001,
            ..Mg1Options::default()
        },
        engine,
        threads,
        replications,
        ..ClusterSweepOptions::default()
    };
    // Results are bit-identical at any worker count, so clamp the fan-out
    // to what the host can actually run in parallel — more threads than
    // cores would measure scheduler overhead, not the engine.
    let fast_threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(8));
    let fast_replications = 8;
    let t5 = Instant::now();
    let legacy_points = cluster_sweep(&sweep_grid(ClusterEngine::Lindley, 1, 1));
    let legacy_s = t5.elapsed().as_secs_f64();
    let t6 = Instant::now();
    let fast_points = cluster_sweep(&sweep_grid(
        ClusterEngine::Event(EventQueueKind::Wheel),
        fast_threads,
        fast_replications,
    ));
    let fast_s2 = t6.elapsed().as_secs_f64();
    let legacy_requests: u64 = legacy_points.iter().map(|p| p.samples as u64).sum();
    let fast_requests: u64 = fast_points.iter().map(|p| p.samples as u64).sum();
    let sweep_path = SweepPathBench {
        points: legacy_points.len(),
        requests: legacy_requests,
        available_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        legacy_wall_s: legacy_s,
        legacy_requests_per_sec: legacy_requests as f64 / legacy_s.max(1e-12),
        fast_threads,
        fast_replications,
        fast_wall_s: fast_s2,
        fast_requests_per_sec: fast_requests as f64 / fast_s2.max(1e-12),
        speedup: (fast_requests as f64 / fast_s2.max(1e-12))
            / (legacy_requests as f64 / legacy_s.max(1e-12)).max(1e-12),
    };
    eprintln!(
        "bench: sweep path {:.2}x ({:.2}s legacy -> {:.2}s fast), wheel:heap ratio {wheel_vs_heap:.3}",
        sweep_path.speedup, legacy_s, fast_s2
    );

    eprintln!("bench: observability collection overhead (sketch vs exact vector)");
    let obs = bench_obs(seed, if smoke { 2_000_000 } else { 8_000_000 });
    eprintln!(
        "bench: sketch {:.1} Msamples/s vs vec {:.1} Msamples/s ({:.2}x), p99 err {:.4}",
        obs.sketch_msamples_per_sec,
        obs.vec_msamples_per_sec,
        obs.sketch_vs_vec_ratio,
        obs.p99_relative_error
    );

    eprintln!("bench: cell cache, cold vs warm (fig5 + cluster sweep)");
    let cache_dir =
        std::env::temp_dir().join(format!("duplexity-cellcache-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    // One closure runs both grids against the given cache handle and
    // serializes the combined artifact, so the cold and warm passes are
    // character-for-character comparable.
    let run_cached = |cache: &CellCache| -> (String, f64) {
        let mut f5 = opts_of(Stepping::FastForward);
        f5.cache = Some(cache.clone());
        let mut cs = fid.cluster_sweep_options(seed);
        cs.threads = threads;
        cs.cache = Some(cache.clone());
        let t = Instant::now();
        let f5_cells = run_fig5(&f5);
        let cs_points = cluster_sweep(&cs);
        let wall = t.elapsed().as_secs_f64();
        let artifact = format!(
            "{}\n{}",
            serde_json::to_string_pretty(&f5_cells).expect("serialize fig5 cells"),
            serde_json::to_string_pretty(&cs_points).expect("serialize cluster points"),
        );
        (artifact, wall)
    };
    let cold_cache = CellCache::new(&cache_dir);
    let (cold_artifact, cold_wall) = run_cached(&cold_cache);
    let warm_cache = CellCache::new(&cache_dir);
    let (warm_artifact, warm_wall) = run_cached(&warm_cache);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let identical = cold_artifact == warm_artifact;
    let warm_speedup = cold_wall / warm_wall.max(1e-12);
    assert!(
        identical,
        "warm cell-cache artifacts diverged from cold — cache round-trip is not bit-exact"
    );
    assert_eq!(
        cold_cache.hits(),
        0,
        "cold pass found entries in a fresh cache dir"
    );
    assert_eq!(
        warm_cache.misses(),
        0,
        "warm pass missed cells the cold pass stored"
    );
    assert!(
        warm_cache.hits() > 0,
        "warm pass hit nothing — cache is inert"
    );
    assert!(
        warm_speedup >= MIN_WARM_SPEEDUP,
        "warm cache re-run only {warm_speedup:.2}x faster than cold (need >= {MIN_WARM_SPEEDUP}x)"
    );
    let cache_bench = CellCacheBench {
        cells: cold_cache.misses(),
        cold_wall_s: cold_wall,
        warm_wall_s: warm_wall,
        warm_speedup,
        cold_misses: cold_cache.misses(),
        warm_hits: warm_cache.hits(),
        bytes_written: cold_cache.bytes_written(),
        identical,
    };
    eprintln!(
        "bench: cache warm re-run {warm_speedup:.1}x faster ({cold_wall:.2}s cold -> {warm_wall:.3}s warm, {} cells)",
        cache_bench.cells
    );

    let report = BenchReport {
        seed,
        threads,
        smoke,
        fig5: Fig5Bench {
            designs: grid.designs.clone(),
            workloads: grid.workloads.clone(),
            loads: grid.loads.clone(),
            horizon_cycles: horizon,
            cells,
            nominal_sim_cycles,
            naive: timing(naive_s),
            fast_forward: timing(fast_s),
            speedup,
            results_identical: identical,
        },
        fault_sweep: FaultSweepBench {
            points: points.len(),
            wall_s: sweep_s,
            points_per_sec: points.len() as f64 / sweep_s.max(1e-12),
        },
        cluster_sweep: ClusterSweepBench {
            points: cluster_points.len(),
            saturated: cluster_points.iter().filter(|p| p.saturated).count(),
            wall_s: cluster_s,
            points_per_sec: cluster_points.len() as f64 / cluster_s.max(1e-12),
        },
        hedge_sweep: HedgeSweepBench {
            points: hedge_points.len(),
            saturated: hedge_points.iter().filter(|p| p.saturated).count(),
            dup_copies: hedge_points.iter().map(|p| p.dup_copies).sum(),
            wall_s: hedge_s,
            points_per_sec: hedge_points.len() as f64 / hedge_s.max(1e-12),
        },
        rack_sweep: RackSweepBench {
            points: rack_points.len(),
            saturated: rack_points.iter().filter(|p| p.saturated).count(),
            steals: rack_points.iter().map(|p| p.steals).sum(),
            wall_s: rack_s,
            points_per_sec: rack_points.len() as f64 / rack_s.max(1e-12),
        },
        engine_core,
        sweep_path,
        obs,
        cache: cache_bench,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    let manifest = RunManifest::new("bench", env!("CARGO_PKG_VERSION"))
        .seed(seed)
        .threads(threads)
        .event_queue(EventQueueKind::default().name())
        .with("smoke", smoke)
        .with("artifact", "bench");
    let mpath = manifest_path(std::path::Path::new(&out));
    std::fs::write(&mpath, manifest.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", mpath.display());
        std::process::exit(1);
    });
    eprintln!(
        "bench: naive {naive_s:.2}s, fast-forward {fast_s:.2}s, speedup {speedup:.2}x -> {out}"
    );

    if let Some(baseline_path) = arg_after("--guard") {
        // Report paths the baseline may guard, with this run's measurements.
        let measured: &[(&str, f64)] = &[
            (
                "engine_core.wheel_vs_heap_rps_ratio",
                report.engine_core.wheel_vs_heap_rps_ratio,
            ),
            ("sweep_path.speedup", report.sweep_path.speedup),
            ("fig5.speedup", report.fig5.speedup),
            ("obs.sketch_vs_vec_ratio", report.obs.sketch_vs_vec_ratio),
            ("cache.warm_speedup", report.cache.warm_speedup),
        ];
        let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("guard: cannot read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let root = serde_json::parse_value(&text).unwrap_or_else(|e| {
            eprintln!("guard: cannot parse baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let Some(Value::Object(metrics)) = root.get_field("metrics") else {
            eprintln!("guard: baseline {baseline_path} has no \"metrics\" object");
            std::process::exit(1);
        };
        let mut failed = false;
        for (name, spec) in metrics {
            let Some(baseline_value) = spec.get_field("value").and_then(value_as_f64) else {
                eprintln!("guard: metric {name} in {baseline_path} has no numeric \"value\"");
                failed = true;
                continue;
            };
            let tolerance = spec
                .get_field("tolerance")
                .and_then(value_as_f64)
                .unwrap_or(GUARD_TOLERANCE);
            let Some(&(_, m)) = measured.iter().find(|(n, _)| n == name) else {
                eprintln!("guard: metric {name} in {baseline_path} is not one this bench measures");
                failed = true;
                continue;
            };
            let floor = (1.0 - tolerance) * baseline_value;
            if m < floor {
                eprintln!(
                    "guard: {name} regressed — measured {m:.3} is below {floor:.3} \
                     ({:.0}% under the committed baseline {baseline_value:.3} in {baseline_path})",
                    tolerance * 100.0
                );
                failed = true;
            } else {
                eprintln!(
                    "guard: {name} {m:.3} within {:.0}% of baseline {baseline_value:.3}",
                    tolerance * 100.0
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
