//! Standing perf-trajectory benchmark for the cycle simulator.
//!
//! ```text
//! bench [--smoke] [--seed N] [--threads N] [--out FILE]
//! ```
//!
//! Times a stall-heavy Figure 5 configuration twice in the same process —
//! once with [`Stepping::Naive`] (step every cycle) and once with
//! [`Stepping::FastForward`] (skip provably quiescent spans) — asserts the
//! two grids are cell-for-cell identical, then times the fault-policy sweep,
//! the cluster balancing sweep, and the duplication/hedging sweep once
//! each. Writes the measurements as
//! JSON (default `BENCH_cycles.json`) so CI can archive a perf trajectory
//! across commits.
//!
//! `--smoke` shrinks horizons for a fast CI pass; `--threads 1` (the
//! default here) keeps per-mode wall times comparable across machines with
//! different core counts. The speedup is end-to-end: it includes the
//! never-skipped lender-reference calibration and the queueing runs both
//! modes share, so it under-states the raw cycle-loop gain.

use duplexity::experiments::cluster_sweep::cluster_sweep;
use duplexity::experiments::fault_sweep::{fault_sweep, FaultSweepOptions};
use duplexity::experiments::fig5::{run_fig5, Fig5Cell, Fig5Options};
use duplexity::experiments::hedge_sweep::hedge_sweep;
use duplexity::{Design, Workload};
use duplexity_bench::Fidelity;
use duplexity_cpu::designs::Stepping;
use duplexity_queueing::des::Mg1Options;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ModeTiming {
    wall_s: f64,
    cells_per_sec: f64,
    sim_cycles_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Fig5Bench {
    designs: Vec<Design>,
    workloads: Vec<Workload>,
    loads: Vec<f64>,
    horizon_cycles: u64,
    cells: usize,
    /// Cycle-loop iterations a naive pass performs: one horizon per grid
    /// cell, a third per calibration pair, and the lender-reference runs
    /// (half a horizon for the pooled lender, a quarter for the lone batch
    /// thread).
    nominal_sim_cycles: u64,
    naive: ModeTiming,
    fast_forward: ModeTiming,
    speedup: f64,
    results_identical: bool,
}

#[derive(Debug, Serialize)]
struct FaultSweepBench {
    points: usize,
    wall_s: f64,
    points_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct ClusterSweepBench {
    points: usize,
    saturated: usize,
    wall_s: f64,
    points_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct HedgeSweepBench {
    points: usize,
    saturated: usize,
    /// Duplicate copies issued across the grid — a sanity signal that the
    /// timed work actually exercised the duplication machinery.
    dup_copies: u64,
    wall_s: f64,
    points_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    seed: u64,
    threads: usize,
    smoke: bool,
    fig5: Fig5Bench,
    fault_sweep: FaultSweepBench,
    cluster_sweep: ClusterSweepBench,
    hedge_sweep: HedgeSweepBench,
}

fn stall_heavy_opts(seed: u64, threads: usize, horizon: u64, stepping: Stepping) -> Fig5Options {
    Fig5Options {
        // Baseline only: the paper's motivating configuration, where the
        // master-core burns thousands of cycles per µs-scale stall doing
        // nothing — exactly the span fast-forward folds away. (Baseline is
        // also the normalization reference, so it is a valid 1-design grid.)
        designs: vec![Design::Baseline],
        workloads: vec![Workload::McRouter],
        loads: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        horizon_cycles: horizon,
        seed,
        queue: Mg1Options {
            max_samples: 20_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        stepping,
        ..Fig5Options::default()
    }
}

/// Returns a description of the first naive/fast-forward disagreement, or
/// `None` when the grids are cell-for-cell identical. Naming the cell and
/// field turns a bit-identity violation from a yes/no verdict into a
/// reproducible bug report.
fn first_mismatch(a: &[Fig5Cell], b: &[Fig5Cell]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("grid sizes differ: {} vs {}", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(b) {
        let cell = format!(
            "{} / {} @ load {:.2}",
            x.design.name(),
            y.workload.name(),
            x.load
        );
        if x.design != y.design || x.workload != y.workload || x.load != y.load {
            return Some(format!(
                "grid order diverged at {cell} vs {} / {} @ load {:.2}",
                y.design.name(),
                y.workload.name(),
                y.load
            ));
        }
        let fields: [(&str, f64, f64); 8] = [
            ("utilization", x.utilization, y.utilization),
            (
                "perf_density_norm",
                x.perf_density_norm,
                y.perf_density_norm,
            ),
            ("energy_norm", x.energy_norm, y.energy_norm),
            ("p99_us", x.p99_us, y.p99_us),
            ("iso_p99_us", x.iso_p99_us, y.iso_p99_us),
            ("stp_norm", x.stp_norm, y.stp_norm),
            ("service_slowdown", x.service_slowdown, y.service_slowdown),
            (
                "remote_ops_per_us",
                x.remote_ops_per_us,
                y.remote_ops_per_us,
            ),
        ];
        for (name, naive, fast) in fields {
            if naive.to_bits() != fast.to_bits() {
                return Some(format!(
                    "{cell}: {name} naive {naive:?} vs fast-forward {fast:?}"
                ));
            }
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let smoke = has("--smoke");
    let seed: u64 = arg_after("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let threads: usize = arg_after("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out = arg_after("--out")
        .cloned()
        .unwrap_or_else(|| "BENCH_cycles.json".to_string());

    let horizon: u64 = if smoke { 600_000 } else { 3_000_000 };
    let opts_of = |stepping| stall_heavy_opts(seed, threads, horizon, stepping);
    let grid = opts_of(Stepping::Naive);
    let cells = grid.loads.len() * grid.workloads.len() * grid.designs.len();
    let pairs = grid.workloads.len() * grid.designs.len();
    let nominal_sim_cycles =
        cells as u64 * horizon + pairs as u64 * (horizon / 3) + horizon / 2 + horizon / 4;

    eprintln!("bench: fig5 stall-heavy grid, naive stepping ({cells} cells, horizon {horizon})");
    let t0 = Instant::now();
    let naive_cells = run_fig5(&opts_of(Stepping::Naive));
    let naive_s = t0.elapsed().as_secs_f64();

    eprintln!("bench: fig5 stall-heavy grid, fast-forward stepping");
    let t1 = Instant::now();
    let fast_cells = run_fig5(&opts_of(Stepping::FastForward));
    let fast_s = t1.elapsed().as_secs_f64();

    let mismatch = first_mismatch(&naive_cells, &fast_cells);
    let identical = mismatch.is_none();
    assert!(
        identical,
        "fast-forward diverged from naive stepping — bit-identity contract broken at {}",
        mismatch.as_deref().unwrap_or("unknown cell")
    );

    let timing = |wall_s: f64| ModeTiming {
        wall_s,
        cells_per_sec: cells as f64 / wall_s.max(1e-12),
        sim_cycles_per_sec: nominal_sim_cycles as f64 / wall_s.max(1e-12),
    };
    let speedup = naive_s / fast_s.max(1e-12);

    eprintln!("bench: fault-policy sweep");
    let mut sweep_opts = FaultSweepOptions {
        seed,
        ..FaultSweepOptions::default()
    };
    if smoke {
        sweep_opts.loads = vec![0.5];
        sweep_opts.queue = Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            ..Mg1Options::default()
        };
    }
    let t2 = Instant::now();
    let points = fault_sweep(&sweep_opts);
    let sweep_s = t2.elapsed().as_secs_f64();

    eprintln!("bench: cluster balancing sweep");
    let fid = if smoke {
        Fidelity::Bench
    } else {
        Fidelity::Quick
    };
    let mut cluster_opts = fid.cluster_sweep_options(seed);
    cluster_opts.threads = threads;
    let t3 = Instant::now();
    let cluster_points = cluster_sweep(&cluster_opts);
    let cluster_s = t3.elapsed().as_secs_f64();

    eprintln!("bench: duplication/hedging sweep");
    let mut hedge_opts = fid.hedge_sweep_options(seed);
    hedge_opts.threads = threads;
    let t4 = Instant::now();
    let hedge_points = hedge_sweep(&hedge_opts);
    let hedge_s = t4.elapsed().as_secs_f64();

    let report = BenchReport {
        seed,
        threads,
        smoke,
        fig5: Fig5Bench {
            designs: grid.designs.clone(),
            workloads: grid.workloads.clone(),
            loads: grid.loads.clone(),
            horizon_cycles: horizon,
            cells,
            nominal_sim_cycles,
            naive: timing(naive_s),
            fast_forward: timing(fast_s),
            speedup,
            results_identical: identical,
        },
        fault_sweep: FaultSweepBench {
            points: points.len(),
            wall_s: sweep_s,
            points_per_sec: points.len() as f64 / sweep_s.max(1e-12),
        },
        cluster_sweep: ClusterSweepBench {
            points: cluster_points.len(),
            saturated: cluster_points.iter().filter(|p| p.saturated).count(),
            wall_s: cluster_s,
            points_per_sec: cluster_points.len() as f64 / cluster_s.max(1e-12),
        },
        hedge_sweep: HedgeSweepBench {
            points: hedge_points.len(),
            saturated: hedge_points.iter().filter(|p| p.saturated).count(),
            dup_copies: hedge_points.iter().map(|p| p.dup_copies).sum(),
            wall_s: hedge_s,
            points_per_sec: hedge_points.len() as f64 / hedge_s.max(1e-12),
        },
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "bench: naive {naive_s:.2}s, fast-forward {fast_s:.2}s, speedup {speedup:.2}x -> {out}"
    );
}
