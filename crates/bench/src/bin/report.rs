//! Regenerates every table and figure of the paper as text.
//!
//! ```text
//! report [--quick] [--seed N] [--threads N] [--json DIR] [--cache DIR]
//!        [--trace FILE] [--metrics FILE] [--timeseries FILE] [--fig1a]
//!        [--fig1b] [--fig1c] [--fig2a] [--fig2b] [--table1] [--table2]
//!        [--fig5] [--fig6] [--faults] [--cluster] [--hedge] [--rack]
//!        [--all]
//! ```
//!
//! With no figure flags (or `--all`), everything is regenerated. `--quick`
//! reduces simulation horizons for a faster pass. `--json DIR` additionally
//! writes each artifact as machine-readable JSON into `DIR`. `--threads N`
//! (default: `DUPLEXITY_THREADS`, then available parallelism) sets the
//! worker count for the Figure 5/6 grids — the output is bit-identical for
//! every value, only the wall time changes.
//!
//! `--trace FILE` records cycle-domain morph/stall/borrow/fault/request
//! events during the Figure 5 grid and writes a Chrome `trace_event` JSON
//! file (open in `chrome://tracing` or <https://ui.perfetto.dev>).
//! `--metrics FILE` writes the merged counter/histogram registry as JSON.
//! `--timeseries FILE` runs the request-domain timeline (event-clock gauge
//! series plus the DES self-profile) and writes its JSON artifact. All are
//! deterministic: byte-identical for every `--threads` value, and the
//! figure output itself is unchanged by tracing.
//!
//! `--cache DIR` (or `DUPLEXITY_CACHE=DIR`) enables the content-addressed
//! simulation-cell cache: every sweep/grid cell probes DIR before running
//! and stores its measurements after, so re-runs with overlapping grids
//! skip the overlap. Cached artifacts are byte-identical to cold ones —
//! only the wall time changes. When the cache is active, each cached
//! artifact's manifest records a digest-of-digests over its cell keys.
//!
//! Every artifact gets a self-describing run manifest beside it at
//! `<artifact>.manifest.json` (tool, crate versions, seed, fidelity,
//! requested threads, event-queue kind) — a pure function of the run's
//! inputs, so it too is byte-identical at any worker count.

use duplexity::experiments::{
    cluster_sweep, fault_sweep, fig1, fig2, fig5, fig6, hedge_sweep, rack_sweep, tables, timeline,
};
use duplexity::report as render;
use duplexity::{digest_of_digests, CellCache};
use duplexity_bench::Fidelity;
use duplexity_obs::{manifest_path, RunManifest};
use std::path::{Path, PathBuf};

/// Writes `value` as pretty JSON to `dir/name.json` when exporting, plus
/// the run manifest beside it.
fn export<T: serde::Serialize>(dir: Option<&PathBuf>, name: &str, value: &T, base: &RunManifest) {
    let Some(dir) = dir else { return };
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path)
        .map_err(|e| e.to_string())
        .and_then(|f| serde_json::to_writer_pretty(f, value).map_err(|e| e.to_string()))
    {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    export_manifest(&path, name, base);
}

/// Writes `base` (stamped with the artifact name) to `<path>.manifest.json`.
fn export_manifest(path: &Path, artifact: &str, base: &RunManifest) {
    let manifest = base.clone().with("artifact", artifact);
    write_artifact(&manifest_path(path), &manifest.to_json());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);
    let fidelity = if has("--quick") {
        Fidelity::Quick
    } else {
        Fidelity::Full
    };
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);
    let json_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let trace_path: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let metrics_path: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let timeseries_path: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--timeseries")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let cache_flag = args
        .iter()
        .position(|a| a == "--cache")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let cache = CellCache::resolve(cache_flag);
    if let Some(c) = &cache {
        eprintln!("cell cache: {}", c.dir().display());
    }
    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let json_dir = json_dir.as_ref();
    let figure_flags = [
        "--fig1a",
        "--fig1b",
        "--fig1c",
        "--fig2a",
        "--fig2b",
        "--table1",
        "--table2",
        "--fig5",
        "--fig6",
        "--faults",
        "--cluster",
        "--hedge",
        "--rack",
        "--extensions",
        "--power",
        // Not a figure, but an artifact selector all the same: asking for
        // only the timeline must not trigger the run-everything default.
        "--timeseries",
    ];
    let all = has("--all") || !args.iter().any(|a| figure_flags.contains(&a.as_str()));
    let want = |flag: &str| all || has(flag);

    // The base manifest every artifact's sidecar derives from: requested
    // inputs only (never resolved worker counts or wall-clock facts), so
    // manifests are byte-identical at any worker count.
    let manifest = RunManifest::new("report", env!("CARGO_PKG_VERSION"))
        .seed(seed)
        .threads(threads)
        .event_queue(duplexity_queueing::eventcore::EventQueueKind::default().name())
        .with("fidelity", format!("{fidelity:?}"));

    // Stamps an artifact manifest with the digest-of-digests over its cell
    // keys — but only when the cache is active, so cache-off runs keep
    // their previous manifest bytes. The digest is a pure function of the
    // requested inputs, hence still worker-count-independent.
    let stamp = |keys: &[duplexity::CellKey]| -> RunManifest {
        match &cache {
            Some(_) => manifest
                .clone()
                .with("cache_digest", digest_of_digests(keys)),
            None => manifest.clone(),
        }
    };

    let pool_threads = duplexity::ExecPool::new(threads).threads();
    println!(
        "Duplexity reproduction report (seed {seed}, {fidelity:?} fidelity, {pool_threads} worker thread{})\n",
        if pool_threads == 1 { "" } else { "s" }
    );

    if want("--table1") {
        println!("Table I: microarchitecture details");
        for line in tables::table1_lines() {
            println!("  {line}");
        }
        println!();
    }
    if want("--table2") {
        println!("Table II: area and clock frequencies (model vs paper)");
        for line in tables::table2_lines() {
            println!("  {line}");
        }
        println!();
        export(json_dir, "table2", &tables::table2_rows(), &manifest);
    }
    if want("--fig1a") {
        println!("{}", render::render_fig1a(&fig1::fig1a(1)));
        export(json_dir, "fig1a", &fig1::fig1a(8), &manifest);
    }
    if want("--fig1b") {
        let series = fig1::fig1b(200);
        println!("{}", render::render_fig1b(&series));
        export(json_dir, "fig1b", &series, &manifest);
    }
    if want("--fig1c") {
        let points = fig1::fig1c(16, fidelity.sweep_horizon_cycles(), seed);
        println!("{}", render::render_fig1c(&points));
        for v in fig1::FlannVariant::ALL {
            if let Some(peak) = fig1::peak_threads(&points, v) {
                println!("  {v} peaks at {peak} threads");
            }
        }
        println!();
        export(json_dir, "fig1c", &points, &manifest);
    }
    if want("--fig2a") {
        let points = fig2::fig2a(16, fidelity.sweep_horizon_cycles(), seed);
        println!("{}", render::render_fig2a(&points));
        export(json_dir, "fig2a", &points, &manifest);
    }
    if want("--fig2b") {
        let points = fig2::fig2b(32);
        println!("{}", render::render_fig2b(&points));
        export(json_dir, "fig2b", &points, &manifest);
    }

    if want("--power") {
        println!("{}", render::render_power_breakdown(2.0));
    }

    if want("--extensions") {
        eprintln!("running the extension-design comparison...");
        let mut opts = fidelity.fig5_options(seed);
        opts.threads = threads;
        opts.cache = cache.clone();
        opts.designs = duplexity::Design::ALL_WITH_EXTENSIONS.to_vec();
        opts.workloads = vec![duplexity::Workload::McRouter];
        opts.loads = vec![0.5];
        let cells = fig5::run_fig5(&opts);
        println!(
            "{}",
            render::render_fig5_matrix(
                &cells,
                "Extensions: utilization incl. Elfen and Runahead (McRouter @ 50%)",
                |c| c.utilization
            )
        );
        println!(
            "{}",
            render::render_fig5_matrix(&cells, "Extensions: normalized p99", |c| c.p99_norm)
        );
        export(
            json_dir,
            "extensions",
            &cells,
            &stamp(&fig5::cell_keys(&opts)),
        );
    }

    if want("--faults") {
        eprintln!("running the fault-policy tail sweep...");
        let mut opts = fidelity.fault_sweep_options(seed);
        opts.threads = threads;
        opts.cache = cache.clone();
        let points = fault_sweep::fault_sweep(&opts);
        println!("{}", render::render_fault_sweep(&points));
        export(
            json_dir,
            "fault_sweep",
            &points,
            &stamp(&fault_sweep::cell_keys(&opts)),
        );
    }

    if want("--cluster") {
        eprintln!("running the cluster balancing sweep...");
        let mut opts = fidelity.cluster_sweep_options(seed);
        opts.threads = threads;
        opts.cache = cache.clone();
        let points = cluster_sweep::cluster_sweep(&opts);
        println!("{}", render::render_cluster_sweep(&points));
        export(
            json_dir,
            "cluster_sweep",
            &points,
            &stamp(&cluster_sweep::cell_keys(&opts)),
        );
    }

    if want("--hedge") {
        eprintln!("running the duplication/hedging sweep...");
        let mut opts = fidelity.hedge_sweep_options(seed);
        opts.threads = threads;
        opts.cache = cache.clone();
        let points = hedge_sweep::hedge_sweep(&opts);
        println!("{}", render::render_hedge_sweep(&points));
        export(
            json_dir,
            "hedge_sweep",
            &points,
            &stamp(&hedge_sweep::cell_keys(&opts)),
        );
    }

    if want("--rack") {
        eprintln!("running the two-level rack sweep...");
        let mut opts = fidelity.rack_sweep_options(seed);
        opts.threads = threads;
        opts.cache = cache.clone();
        let points = rack_sweep::rack_sweep(&opts);
        println!("{}", render::render_rack_sweep(&points));
        export(
            json_dir,
            "rack_sweep",
            &points,
            &stamp(&rack_sweep::cell_keys(&opts)),
        );
    }

    if let Some(path) = &timeseries_path {
        eprintln!("running the request-domain timeline...");
        let mut topts = fidelity.timeline_options(seed);
        topts.threads = threads;
        topts.cache = cache.clone();
        let t = timeline::timeline(&topts);
        println!("{}", render::render_timeline(&t));
        write_artifact(path, &t.to_json());
        export_manifest(path, "timeline", &stamp(&timeline::cell_keys(&topts)));
    }

    if want("--fig5") || want("--fig6") {
        eprintln!("running the Figure 5 grid (this is the long part)...");
        let mut opts = fidelity.fig5_options(seed);
        opts.threads = threads;
        opts.cache = cache.clone();
        let trace_cfg = fig5::TraceConfig::default();
        let tracing = trace_path.is_some() || metrics_path.is_some();
        let run = fig5::run_fig5_traced(&opts, tracing.then_some(&trace_cfg));
        if let Some(path) = &trace_path {
            write_artifact(path, &duplexity::chrome_trace_json(&run.traces));
            export_manifest(path, "trace", &manifest);
        }
        if let Some(path) = &metrics_path {
            write_artifact(path, &run.registry.to_json());
            export_manifest(path, "metrics", &manifest);
        }
        let cells = run.cells;
        println!(
            "{}",
            render::render_fig5_matrix(&cells, "Fig 5(a): core utilization", |c| c.utilization)
        );
        println!(
            "{}",
            render::render_fig5_matrix(&cells, "Fig 5(b): normalized performance density", |c| {
                c.perf_density_norm
            })
        );
        println!(
            "{}",
            render::render_fig5_matrix(&cells, "Fig 5(c): normalized energy", |c| c.energy_norm)
        );
        println!(
            "{}",
            render::render_fig5_matrix(&cells, "Fig 5(d): normalized p99 latency", |c| c.p99_norm)
        );
        println!(
            "{}",
            render::render_fig5_matrix(
                &cells,
                "Fig 5(e): normalized iso-throughput p99 latency",
                |c| c.iso_p99_norm
            )
        );
        println!(
            "{}",
            render::render_fig5_matrix(&cells, "Fig 5(f): normalized batch STP", |c| c.stp_norm)
        );
        summarize_headlines(&cells);
        // fig6 is a pure function of the fig5 cells, so both artifacts
        // share the fig5 grid's cache digest.
        let m = stamp(&fig5::cell_keys(&opts));
        export(json_dir, "fig5", &cells, &m);
        if want("--fig6") {
            let f6 = fig6::fig6(&cells);
            println!("{}", render::render_fig6(&f6));
            println!(
                "  worst-case dyads per FDR port: {}",
                fig6::dyads_per_port(&f6)
            );
            export(json_dir, "fig6", &f6, &m);
        }
    }
    if let Some(c) = &cache {
        eprintln!("{}", c.summary());
    }
}

/// Writes a deterministic text artifact (trace / metrics JSON) to `path`.
fn write_artifact(path: &PathBuf, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Prints the paper's headline aggregate comparisons.
fn summarize_headlines(cells: &[fig5::Fig5Cell]) {
    use duplexity::Design;
    let mean = |design: Design, f: &dyn Fn(&fig5::Fig5Cell) -> f64| -> f64 {
        let v: Vec<f64> = cells
            .iter()
            .filter(|c| c.design == design && f(c).is_finite())
            .map(f)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let util = &|c: &fig5::Fig5Cell| c.utilization;
    let iso = &|c: &fig5::Fig5Cell| c.iso_p99_norm;
    let dup_util = mean(Design::Duplexity, util);
    let base_util = mean(Design::Baseline, util);
    let smt_util = mean(Design::Smt, util);
    println!("Headlines (vs paper: 4.8x / 1.9x utilization, 1.8x / 2.7x iso-p99):");
    println!(
        "  Duplexity utilization gain: {:.1}x over baseline, {:.1}x over SMT",
        dup_util / base_util,
        dup_util / smt_util
    );
    let dup_iso = mean(Design::Duplexity, iso);
    let smt_iso = mean(Design::Smt, iso);
    println!(
        "  Duplexity iso-throughput p99: {:.1}x lower than baseline, {:.1}x lower than SMT",
        1.0 / dup_iso,
        smt_iso / dup_iso
    );
}
