//! Shared helpers for the Duplexity benchmark harness.
//!
//! The criterion benches (one target per paper table/figure) and the
//! [`report` binary](../report/index.html) both regenerate the paper's
//! artifacts; this crate holds the fidelity presets they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use duplexity::experiments::cluster_sweep::ClusterSweepOptions;
use duplexity::experiments::fault_sweep::FaultSweepOptions;
use duplexity::experiments::fig5::Fig5Options;
use duplexity::experiments::hedge_sweep::HedgeSweepOptions;
use duplexity::experiments::rack_sweep::RackSweepOptions;
use duplexity::experiments::timeline::TimelineOptions;
use duplexity::{BalancerPolicy, RackPlan};
use duplexity_queueing::des::Mg1Options;

/// Fidelity presets for regenerating the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Bench-sized: a representative sub-grid, small horizons.
    Bench,
    /// Quick report: full grid, reduced horizons.
    Quick,
    /// Full report: the paper's grid at full horizons.
    Full,
}

impl Fidelity {
    /// Cycle-simulation horizon per Figure 5 cell.
    #[must_use]
    pub fn horizon_cycles(self) -> u64 {
        match self {
            Fidelity::Bench => 800_000,
            Fidelity::Quick => 2_500_000,
            Fidelity::Full => 6_000_000,
        }
    }

    /// The Figure 5 grid at this fidelity.
    #[must_use]
    pub fn fig5_options(self, seed: u64) -> Fig5Options {
        let mut opts = Fig5Options {
            horizon_cycles: self.horizon_cycles(),
            seed,
            ..Fig5Options::default()
        };
        match self {
            Fidelity::Bench => {
                opts.workloads = vec![duplexity::Workload::McRouter];
                opts.loads = vec![0.5];
                opts.queue = Mg1Options {
                    max_samples: 120_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Quick => {
                opts.queue = Mg1Options {
                    max_samples: 400_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Full => {}
        }
        opts
    }

    /// The fault-policy sweep grid at this fidelity (the `--faults`
    /// artifact).
    #[must_use]
    pub fn fault_sweep_options(self, seed: u64) -> FaultSweepOptions {
        let mut opts = FaultSweepOptions {
            seed,
            ..FaultSweepOptions::default()
        };
        match self {
            Fidelity::Bench => {
                opts.loads = vec![0.5];
                opts.queue = Mg1Options {
                    max_samples: 60_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Quick => {
                opts.queue = Mg1Options {
                    max_samples: 120_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Full => {}
        }
        opts
    }

    /// The cluster balancing sweep grid at this fidelity (the `--cluster`
    /// artifact).
    #[must_use]
    pub fn cluster_sweep_options(self, seed: u64) -> ClusterSweepOptions {
        let mut opts = ClusterSweepOptions {
            seed,
            calibration_cycles: self.horizon_cycles(),
            ..ClusterSweepOptions::default()
        };
        match self {
            Fidelity::Bench => {
                opts.designs = vec![duplexity::Design::Baseline];
                opts.policies = vec![BalancerPolicy::Random, BalancerPolicy::Jsq];
                opts.server_counts = vec![4];
                opts.loads = vec![0.5];
                opts.queue = Mg1Options {
                    max_samples: 60_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Quick => {
                opts.queue = Mg1Options {
                    max_samples: 120_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Full => {}
        }
        opts
    }

    /// The duplication/hedging sweep grid at this fidelity (the `--hedge`
    /// artifact). Bench trims to one policy and loads the eager no-purge
    /// plan still survives; Full keeps the default grid, whose no-purge
    /// cells saturate by design (the report renders them as `sat`).
    #[must_use]
    pub fn hedge_sweep_options(self, seed: u64) -> HedgeSweepOptions {
        let mut opts = HedgeSweepOptions {
            seed,
            ..HedgeSweepOptions::default()
        };
        match self {
            Fidelity::Bench => {
                opts.policies = vec![BalancerPolicy::Jsq];
                opts.server_counts = vec![4];
                opts.loads = vec![0.4];
                opts.queue = Mg1Options {
                    max_samples: 60_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Quick => {
                opts.loads = vec![0.25, 0.4];
                opts.queue = Mg1Options {
                    max_samples: 120_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Full => {}
        }
        opts
    }

    /// The two-level rack sweep grid at this fidelity (the `--rack`
    /// artifact). Bench trims to one design, one policy, and the plans
    /// that carry the story (fresh, stale, stale-with-stealing,
    /// distributed-stale); every preset keeps the fresh plan as the
    /// cluster-equivalent anchor.
    #[must_use]
    pub fn rack_sweep_options(self, seed: u64) -> RackSweepOptions {
        let mut opts = RackSweepOptions {
            seed,
            calibration_cycles: self.horizon_cycles(),
            ..RackSweepOptions::default()
        };
        match self {
            Fidelity::Bench => {
                opts.designs = vec![duplexity::Design::Baseline];
                opts.policies = vec![BalancerPolicy::Jsq];
                opts.plans = vec![
                    RackPlan::fresh(),
                    RackPlan::fresh().with_delta(32.0),
                    RackPlan::fresh().with_delta(8.0).with_steal(2),
                    RackPlan::fresh()
                        .with_delta(8.0)
                        .distributed(4)
                        .with_tenants(64, 0.99),
                ];
                opts.server_counts = vec![4];
                opts.loads = vec![0.5];
                opts.queue = Mg1Options {
                    max_samples: 60_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Quick => {
                opts.queue = Mg1Options {
                    max_samples: 120_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Full => {}
        }
        opts
    }

    /// The request-domain timeline at this fidelity (the `--timeseries`
    /// artifact): event-clock gauge series plus the DES self-profile.
    #[must_use]
    pub fn timeline_options(self, seed: u64) -> TimelineOptions {
        let mut opts = TimelineOptions {
            seed,
            ..TimelineOptions::default()
        };
        match self {
            Fidelity::Bench => {
                opts.servers = 4;
                opts.loads = vec![0.4];
                opts.queue = Mg1Options {
                    max_samples: 60_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Quick => {
                opts.queue = Mg1Options {
                    max_samples: 120_000,
                    warmup: 1_000,
                    ..Mg1Options::default()
                };
            }
            Fidelity::Full => {}
        }
        opts
    }

    /// SMT-sweep horizon for Figures 1(c) and 2(a).
    #[must_use]
    pub fn sweep_horizon_cycles(self) -> u64 {
        match self {
            Fidelity::Bench => 300_000,
            Fidelity::Quick => 800_000,
            Fidelity::Full => 2_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        assert!(Fidelity::Bench.horizon_cycles() < Fidelity::Quick.horizon_cycles());
        assert!(Fidelity::Quick.horizon_cycles() < Fidelity::Full.horizon_cycles());
        assert_eq!(Fidelity::Bench.fig5_options(1).workloads.len(), 1);
        assert_eq!(Fidelity::Full.fig5_options(1).workloads.len(), 5);
    }

    #[test]
    fn fault_sweep_presets_scale_with_fidelity() {
        assert_eq!(Fidelity::Bench.fault_sweep_options(1).loads, vec![0.5]);
        assert!(
            Fidelity::Bench.fault_sweep_options(1).queue.max_samples
                < Fidelity::Full.fault_sweep_options(1).queue.max_samples
        );
        assert_eq!(Fidelity::Full.fault_sweep_options(7).seed, 7);
    }

    #[test]
    fn cluster_sweep_presets_scale_with_fidelity() {
        let bench = Fidelity::Bench.cluster_sweep_options(1);
        assert_eq!(bench.server_counts, vec![4]);
        assert_eq!(bench.loads, vec![0.5]);
        assert!(
            bench.queue.max_samples < Fidelity::Full.cluster_sweep_options(1).queue.max_samples
        );
        assert_eq!(Fidelity::Full.cluster_sweep_options(9).seed, 9);
    }

    #[test]
    fn hedge_sweep_presets_scale_with_fidelity() {
        let bench = Fidelity::Bench.hedge_sweep_options(1);
        assert_eq!(bench.server_counts, vec![4]);
        assert_eq!(bench.loads, vec![0.4]);
        assert!(bench.queue.max_samples < Fidelity::Full.hedge_sweep_options(1).queue.max_samples);
        // Every preset keeps the zero-duplication origin of the frontier.
        for f in [Fidelity::Bench, Fidelity::Quick, Fidelity::Full] {
            assert!(f
                .hedge_sweep_options(1)
                .plans
                .iter()
                .any(|p| p.label() == "none"));
        }
        assert_eq!(Fidelity::Full.hedge_sweep_options(9).seed, 9);
    }

    #[test]
    fn rack_sweep_presets_scale_with_fidelity() {
        let bench = Fidelity::Bench.rack_sweep_options(1);
        assert_eq!(bench.server_counts, vec![4]);
        assert_eq!(bench.loads, vec![0.5]);
        assert!(bench.queue.max_samples < Fidelity::Full.rack_sweep_options(1).queue.max_samples);
        // Every preset keeps the fresh plan: the cluster-equivalent anchor
        // every staleness/steal variant is compared against.
        for f in [Fidelity::Bench, Fidelity::Quick, Fidelity::Full] {
            assert!(f
                .rack_sweep_options(1)
                .plans
                .iter()
                .any(|p| p.label() == "central"));
        }
        assert_eq!(Fidelity::Full.rack_sweep_options(9).seed, 9);
    }
}
