//! Benchmarks regenerating Tables I and II.

use criterion::{criterion_group, criterion_main, Criterion};
use duplexity::experiments::tables;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    println!("Table I: microarchitecture details");
    for line in tables::table1_lines() {
        println!("  {line}");
    }
    c.bench_function("table1_render", |b| {
        b.iter(|| black_box(tables::table1_lines()))
    });
}

fn bench_table2(c: &mut Criterion) {
    println!("Table II: area and clock frequencies");
    for line in tables::table2_lines() {
        println!("  {line}");
    }
    c.bench_function("table2_area_model", |b| {
        b.iter(|| black_box(tables::table2_rows()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2
}
criterion_main!(benches);
