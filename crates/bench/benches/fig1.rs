//! Benchmarks regenerating Figure 1 (the killer-microsecond motivation).
//!
//! Each bench target regenerates one sub-figure; the series are printed once
//! so `cargo bench` doubles as a reproduction run.

use criterion::{criterion_group, criterion_main, Criterion};
use duplexity::experiments::fig1;
use duplexity::report as render;
use duplexity_bench::Fidelity;
use std::hint::black_box;

fn bench_fig1a(c: &mut Criterion) {
    println!("{}", render::render_fig1a(&fig1::fig1a(1)));
    c.bench_function("fig1a_utilization_surface", |b| {
        b.iter(|| black_box(fig1::fig1a(black_box(4))))
    });
}

fn bench_fig1b(c: &mut Criterion) {
    println!("{}", render::render_fig1b(&fig1::fig1b(200)));
    c.bench_function("fig1b_idle_period_cdfs", |b| {
        b.iter(|| black_box(fig1::fig1b(black_box(200))))
    });
}

fn bench_fig1c(c: &mut Criterion) {
    let horizon = Fidelity::Bench.sweep_horizon_cycles();
    let points = fig1::fig1c(16, horizon, 42);
    println!("{}", render::render_fig1c(&points));
    for v in fig1::FlannVariant::ALL {
        if let Some(peak) = fig1::peak_threads(&points, v) {
            println!("  {v} peaks at {peak} threads");
        }
    }
    c.bench_function("fig1c_smt_thread_sweep", |b| {
        // One representative column of the sweep (8 threads, all variants).
        b.iter(|| black_box(fig1::fig1c(black_box(8), horizon / 4, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1a, bench_fig1b, bench_fig1c
}
criterion_main!(benches);
