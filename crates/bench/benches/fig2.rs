//! Benchmarks regenerating Figure 2 (lender-core design space).

use criterion::{criterion_group, criterion_main, Criterion};
use duplexity::experiments::fig2;
use duplexity::report as render;
use duplexity_bench::Fidelity;
use std::hint::black_box;

fn bench_fig2a(c: &mut Criterion) {
    let horizon = Fidelity::Bench.sweep_horizon_cycles();
    println!("{}", render::render_fig2a(&fig2::fig2a(16, horizon, 42)));
    c.bench_function("fig2a_ooo_vs_ino_threads", |b| {
        b.iter(|| black_box(fig2::fig2a(black_box(8), horizon / 4, 42)))
    });
}

fn bench_fig2b(c: &mut Criterion) {
    println!("{}", render::render_fig2b(&fig2::fig2b(32)));
    c.bench_function("fig2b_virtual_context_model", |b| {
        b.iter(|| black_box(fig2::fig2b(black_box(32))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2a, bench_fig2b
}
criterion_main!(benches);
