//! Benchmarks regenerating Figure 5 (efficiency and QoS).
//!
//! The bench-sized grid (McRouter @ 50%, all designs) is computed once and
//! printed; each sub-figure then has its own target. `fig5_cell_simulation`
//! measures the cost of one end-to-end cycle-simulation cell, the dominant
//! cost of the full figure.

use criterion::{criterion_group, criterion_main, Criterion};
use duplexity::experiments::fig5::{run_fig5, Fig5Cell};
use duplexity::report::render_fig5_matrix;
use duplexity::{Design, ServerSim, Workload};
use duplexity_bench::Fidelity;
use std::hint::black_box;
use std::sync::OnceLock;

fn cells() -> &'static [Fig5Cell] {
    static CELLS: OnceLock<Vec<Fig5Cell>> = OnceLock::new();
    CELLS.get_or_init(|| {
        // threads: 0 → DUPLEXITY_THREADS / available parallelism; the cells
        // are bit-identical for every worker count.
        let opts = Fidelity::Bench.fig5_options(42);
        println!(
            "computing the bench-sized Figure 5 grid on {} worker thread(s)",
            duplexity::ExecPool::new(opts.threads).threads()
        );
        run_fig5(&opts)
    })
}

fn bench_fig5a(c: &mut Criterion) {
    println!(
        "{}",
        render_fig5_matrix(cells(), "Fig 5(a): core utilization", |x| x.utilization)
    );
    c.bench_function("fig5a_utilization_extract", |b| {
        b.iter(|| {
            black_box(cells().iter().map(|x| x.utilization).sum::<f64>());
        })
    });
}

fn bench_fig5b(c: &mut Criterion) {
    println!(
        "{}",
        render_fig5_matrix(cells(), "Fig 5(b): normalized performance density", |x| {
            x.perf_density_norm
        })
    );
    c.bench_function("fig5b_density_extract", |b| {
        b.iter(|| black_box(cells().iter().map(|x| x.perf_density_norm).sum::<f64>()))
    });
}

fn bench_fig5c(c: &mut Criterion) {
    println!(
        "{}",
        render_fig5_matrix(cells(), "Fig 5(c): normalized energy", |x| x.energy_norm)
    );
    c.bench_function("fig5c_energy_extract", |b| {
        b.iter(|| black_box(cells().iter().map(|x| x.energy_norm).sum::<f64>()))
    });
}

fn bench_fig5d(c: &mut Criterion) {
    println!(
        "{}",
        render_fig5_matrix(cells(), "Fig 5(d): normalized p99", |x| x.p99_norm)
    );
    c.bench_function("fig5d_tail_extract", |b| {
        b.iter(|| black_box(cells().iter().map(|x| x.p99_us).sum::<f64>()))
    });
}

fn bench_fig5e(c: &mut Criterion) {
    println!(
        "{}",
        render_fig5_matrix(cells(), "Fig 5(e): normalized iso-throughput p99", |x| {
            x.iso_p99_norm
        })
    );
    c.bench_function("fig5e_iso_tail_extract", |b| {
        b.iter(|| black_box(cells().iter().map(|x| x.iso_p99_us).sum::<f64>()))
    });
}

fn bench_fig5f(c: &mut Criterion) {
    println!(
        "{}",
        render_fig5_matrix(cells(), "Fig 5(f): normalized batch STP", |x| x.stp_norm)
    );
    c.bench_function("fig5f_stp_extract", |b| {
        b.iter(|| black_box(cells().iter().map(|x| x.stp_norm).sum::<f64>()))
    });
}

fn bench_cell_simulation(c: &mut Criterion) {
    c.bench_function("fig5_cell_simulation", |b| {
        b.iter(|| {
            black_box(
                ServerSim::new(Design::Duplexity, Workload::McRouter)
                    .load(0.5)
                    .horizon_cycles(200_000)
                    .run(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5a, bench_fig5b, bench_fig5c, bench_fig5d, bench_fig5e, bench_fig5f,
        bench_cell_simulation
}
criterion_main!(benches);
