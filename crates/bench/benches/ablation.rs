//! Ablation studies over Duplexity's design parameters.
//!
//! These are not paper figures; they probe the design choices §III argues
//! for:
//!
//! * **eviction latency** — the §III-B4 fast-spill mechanism (≈50 cycles)
//!   vs microcode-style register swapping (hundreds of cycles), measured by
//!   master-thread request latency;
//! * **virtual-context count** — §IV's claim that 32 contexts per dyad
//!   suffice, measured by master-core utilization as the pool shrinks;
//! * **morph threshold** — the minimum hole size worth morphing for.

use criterion::{criterion_group, criterion_main, Criterion};
use duplexity_cpu::dyad::{DyadConfig, DyadSim};
use duplexity_cpu::request::RequestStream;
use duplexity_stats::rng::rng_from_seed;
use duplexity_workloads::graph::FillerFactory;
use duplexity_workloads::Workload;
use std::hint::black_box;

fn run_dyad(cfg: DyadConfig, contexts: usize, horizon: u64) -> duplexity_cpu::dyad::DyadMetrics {
    let w = Workload::McRouter;
    let master = RequestStream::open_loop(
        w.kernel(42),
        0.5,
        w.nominal_service_us(),
        cfg.machine.cycles_per_us(),
    );
    let mut dyad = DyadSim::new(cfg, Box::new(master));
    let fillers = FillerFactory::paper(42);
    for id in 0..contexts {
        dyad.add_batch_thread(id, fillers.stream(id));
    }
    let mut rng = rng_from_seed(7);
    dyad.run(horizon, &mut rng);
    dyad.metrics()
}

fn ablate_eviction_latency(c: &mut Criterion) {
    println!("Ablation: filler-eviction latency vs master mean request latency");
    for evict in [50u64, 250, 1000, 4000] {
        let cfg = DyadConfig {
            morph_out_cycles: evict,
            ..DyadConfig::duplexity()
        };
        let m = run_dyad(cfg, 32, 1_500_000);
        let mean = m.request_latencies_cycles.iter().sum::<u64>() as f64
            / m.request_latencies_cycles.len().max(1) as f64
            / cfg.machine.cycles_per_us();
        println!(
            "  evict {evict:>5} cycles: mean latency {mean:.2}µs, util {:.3}",
            m.master_core_utilization(4)
        );
    }
    c.bench_function("ablation_eviction_latency", |b| {
        b.iter(|| {
            let cfg = DyadConfig {
                morph_out_cycles: 250,
                ..DyadConfig::duplexity()
            };
            black_box(run_dyad(cfg, 16, 150_000))
        })
    });
}

fn ablate_virtual_contexts(c: &mut Criterion) {
    println!("Ablation: virtual contexts per dyad vs master-core utilization");
    for contexts in [8usize, 16, 24, 32] {
        let m = run_dyad(DyadConfig::duplexity(), contexts, 1_500_000);
        println!(
            "  {contexts:>2} contexts: util {:.3}, filler ops {}",
            m.master_core_utilization(4),
            m.filler_retired_on_master
        );
    }
    c.bench_function("ablation_virtual_contexts", |b| {
        b.iter(|| black_box(run_dyad(DyadConfig::duplexity(), 8, 150_000)))
    });
}

fn ablate_morph_threshold(c: &mut Criterion) {
    println!("Ablation: minimum morph gain (cycles) vs utilization and morph count");
    for min_gain in [250u64, 500, 2000, 8000] {
        let cfg = DyadConfig {
            min_morph_gain_cycles: min_gain,
            ..DyadConfig::duplexity()
        };
        let m = run_dyad(cfg, 32, 1_500_000);
        println!(
            "  min gain {min_gain:>5}: util {:.3}, morphs {}",
            m.master_core_utilization(4),
            m.morphs
        );
    }
    c.bench_function("ablation_morph_threshold", |b| {
        b.iter(|| {
            let cfg = DyadConfig {
                min_morph_gain_cycles: 2000,
                ..DyadConfig::duplexity()
            };
            black_box(run_dyad(cfg, 16, 150_000))
        })
    });
}

fn ablate_detection_latency(c: &mut Criterion) {
    println!("Ablation: stall-demarcation latency (§IV) vs filler throughput");
    for delay in [0u64, 100, 1000, 3400] {
        let cfg = DyadConfig {
            stall_detection_delay: delay,
            ..DyadConfig::duplexity()
        };
        let m = run_dyad(cfg, 32, 1_500_000);
        println!(
            "  detect {delay:>5} cycles: util {:.3}, filler ops {}",
            m.master_core_utilization(4),
            m.filler_retired_on_master
        );
    }
    c.bench_function("ablation_detection_latency", |b| {
        b.iter(|| {
            let cfg = DyadConfig {
                stall_detection_delay: 1000,
                ..DyadConfig::duplexity()
            };
            black_box(run_dyad(cfg, 16, 150_000))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablate_eviction_latency, ablate_virtual_contexts, ablate_morph_threshold,
        ablate_detection_latency
}
criterion_main!(benches);
