//! Ablation studies over Duplexity's design parameters.
//!
//! These are not paper figures; they probe the design choices §III argues
//! for:
//!
//! * **eviction latency** — the §III-B4 fast-spill mechanism (≈50 cycles)
//!   vs microcode-style register swapping (hundreds of cycles), measured by
//!   master-thread request latency;
//! * **virtual-context count** — §IV's claim that 32 contexts per dyad
//!   suffice, measured by master-core utilization as the pool shrinks;
//! * **morph threshold** — the minimum hole size worth morphing for.

use criterion::{criterion_group, criterion_main, Criterion};
use duplexity::ExecPool;
use duplexity_cpu::dyad::{DyadConfig, DyadSim};
use duplexity_cpu::request::RequestStream;
use duplexity_stats::rng::rng_from_seed;
use duplexity_workloads::graph::FillerFactory;
use duplexity_workloads::Workload;
use std::hint::black_box;

fn run_dyad(cfg: DyadConfig, contexts: usize, horizon: u64) -> duplexity_cpu::dyad::DyadMetrics {
    let w = Workload::McRouter;
    let master = RequestStream::open_loop(
        w.kernel(42),
        0.5,
        w.nominal_service_us(),
        cfg.machine.cycles_per_us(),
    );
    let mut dyad = DyadSim::new(cfg, Box::new(master));
    let fillers = FillerFactory::paper(42);
    for id in 0..contexts {
        dyad.add_batch_thread(id, fillers.stream(id));
    }
    let mut rng = rng_from_seed(7);
    dyad.run(horizon, &mut rng);
    dyad.metrics()
}

fn ablate_eviction_latency(c: &mut Criterion) {
    println!("Ablation: filler-eviction latency vs master mean request latency");
    let evicts = [50u64, 250, 1000, 4000];
    let rows = ExecPool::from_env().run("ablation/evict", evicts.len(), |i| {
        let cfg = DyadConfig {
            morph_out_cycles: evicts[i],
            ..DyadConfig::duplexity()
        };
        let m = run_dyad(cfg, 32, 1_500_000);
        let mean = m.request_latencies_cycles.iter().sum::<u64>() as f64
            / m.request_latencies_cycles.len().max(1) as f64
            / cfg.machine.cycles_per_us();
        (mean, m.master_core_utilization(4))
    });
    for (&evict, (mean, util)) in evicts.iter().zip(rows) {
        println!("  evict {evict:>5} cycles: mean latency {mean:.2}µs, util {util:.3}");
    }
    c.bench_function("ablation_eviction_latency", |b| {
        b.iter(|| {
            let cfg = DyadConfig {
                morph_out_cycles: 250,
                ..DyadConfig::duplexity()
            };
            black_box(run_dyad(cfg, 16, 150_000))
        })
    });
}

fn ablate_virtual_contexts(c: &mut Criterion) {
    println!("Ablation: virtual contexts per dyad vs master-core utilization");
    let counts = [8usize, 16, 24, 32];
    let rows = ExecPool::from_env().run("ablation/contexts", counts.len(), |i| {
        let m = run_dyad(DyadConfig::duplexity(), counts[i], 1_500_000);
        (m.master_core_utilization(4), m.filler_retired_on_master)
    });
    for (&contexts, (util, fillers)) in counts.iter().zip(rows) {
        println!("  {contexts:>2} contexts: util {util:.3}, filler ops {fillers}");
    }
    c.bench_function("ablation_virtual_contexts", |b| {
        b.iter(|| black_box(run_dyad(DyadConfig::duplexity(), 8, 150_000)))
    });
}

fn ablate_morph_threshold(c: &mut Criterion) {
    println!("Ablation: minimum morph gain (cycles) vs utilization and morph count");
    let gains = [250u64, 500, 2000, 8000];
    let rows = ExecPool::from_env().run("ablation/morph-gain", gains.len(), |i| {
        let cfg = DyadConfig {
            min_morph_gain_cycles: gains[i],
            ..DyadConfig::duplexity()
        };
        let m = run_dyad(cfg, 32, 1_500_000);
        (m.master_core_utilization(4), m.morphs)
    });
    for (&min_gain, (util, morphs)) in gains.iter().zip(rows) {
        println!("  min gain {min_gain:>5}: util {util:.3}, morphs {morphs}");
    }
    c.bench_function("ablation_morph_threshold", |b| {
        b.iter(|| {
            let cfg = DyadConfig {
                min_morph_gain_cycles: 2000,
                ..DyadConfig::duplexity()
            };
            black_box(run_dyad(cfg, 16, 150_000))
        })
    });
}

fn ablate_detection_latency(c: &mut Criterion) {
    println!("Ablation: stall-demarcation latency (§IV) vs filler throughput");
    let delays = [0u64, 100, 1000, 3400];
    let rows = ExecPool::from_env().run("ablation/detect", delays.len(), |i| {
        let cfg = DyadConfig {
            stall_detection_delay: delays[i],
            ..DyadConfig::duplexity()
        };
        let m = run_dyad(cfg, 32, 1_500_000);
        (m.master_core_utilization(4), m.filler_retired_on_master)
    });
    for (&delay, (util, fillers)) in delays.iter().zip(rows) {
        println!("  detect {delay:>5} cycles: util {util:.3}, filler ops {fillers}");
    }
    c.bench_function("ablation_detection_latency", |b| {
        b.iter(|| {
            let cfg = DyadConfig {
                stall_detection_delay: 1000,
                ..DyadConfig::duplexity()
            };
            black_box(run_dyad(cfg, 16, 150_000))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablate_eviction_latency, ablate_virtual_contexts, ablate_morph_threshold,
        ablate_detection_latency
}
criterion_main!(benches);
