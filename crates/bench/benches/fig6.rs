//! Benchmark regenerating Figure 6 (NIC IOPS utilization).

use criterion::{criterion_group, criterion_main, Criterion};
use duplexity::experiments::{fig5, fig6};
use duplexity::report::render_fig6;
use duplexity_bench::Fidelity;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let cells = fig5::run_fig5(&Fidelity::Bench.fig5_options(42));
    let f6 = fig6::fig6(&cells);
    println!("{}", render_fig6(&f6));
    println!(
        "  worst-case dyads per FDR port: {}",
        fig6::dyads_per_port(&f6)
    );
    c.bench_function("fig6_nic_utilization", |b| {
        b.iter(|| black_box(fig6::fig6(black_box(&cells))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
}
criterion_main!(benches);
