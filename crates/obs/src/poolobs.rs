//! ExecPool load observation.
//!
//! [`PoolReport`] captures how a parallel experiment actually executed:
//! wall time, per-worker cell counts and busy time, utilization, and how
//! many cells were claimed beyond an even static split ("steals" under the
//! pool's atomic work-index scheme). This is *wall-clock* data — it varies
//! run to run and across machines — so it is only ever reported through
//! [`log_line`](crate::log_line)-style side channels, never folded into
//! deterministic artifacts.

/// One worker's share of a pool run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerLoad {
    /// Cells this worker claimed and completed.
    pub cells: u64,
    /// Wall-clock milliseconds this worker spent inside cell closures.
    pub busy_ms: f64,
}

/// Summary of one `ExecPool::run` invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolReport {
    /// The pool label (e.g. `fig5/cells`).
    pub label: String,
    /// Worker count the pool ran with.
    pub workers: usize,
    /// Total cells executed.
    pub cells: u64,
    /// End-to-end wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Per-worker load, indexed by worker id.
    pub per_worker: Vec<WorkerLoad>,
}

impl PoolReport {
    /// Fraction of total worker-time spent inside cell closures
    /// (`Σ busy / (workers × wall)`), in `[0, 1]` for a sane report.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let denom = self.workers as f64 * self.wall_ms;
        if denom <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.per_worker.iter().map(|w| w.busy_ms).sum();
        busy / denom
    }

    /// Cells claimed beyond an even static split. Under the pool's shared
    /// atomic work index, a worker that claims more than `floor(cells /
    /// workers)` effectively stole slack from a slower peer.
    #[must_use]
    pub fn steal_count(&self) -> u64 {
        if self.workers == 0 {
            return 0;
        }
        let fair = self.cells / self.workers as u64;
        self.per_worker
            .iter()
            .map(|w| w.cells.saturating_sub(fair))
            .sum()
    }

    /// Worker-load imbalance: the busiest worker's busy time over the
    /// mean busy time, `1.0` for a perfectly even split. `0.0` when no
    /// worker reported busy time (degenerate report).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.per_worker.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.per_worker.iter().map(|w| w.busy_ms).sum();
        if busy <= 0.0 {
            return 0.0;
        }
        let max = self
            .per_worker
            .iter()
            .map(|w| w.busy_ms)
            .fold(0.0, f64::max);
        max * self.per_worker.len() as f64 / busy
    }

    /// One-line human summary for `DUPLEXITY_LOG` output.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "{}: {} cells on {} workers in {:.1}ms (util {:.0}%, imbalance {:.2}x, steals {})",
            self.label,
            self.cells,
            self.workers,
            self.wall_ms,
            self.utilization() * 100.0,
            self.imbalance(),
            self.steal_count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PoolReport {
        PoolReport {
            label: "fig5/cells".to_string(),
            workers: 2,
            cells: 5,
            wall_ms: 10.0,
            per_worker: vec![
                WorkerLoad {
                    cells: 3,
                    busy_ms: 9.0,
                },
                WorkerLoad {
                    cells: 2,
                    busy_ms: 5.0,
                },
            ],
        }
    }

    #[test]
    fn utilization_is_busy_over_capacity() {
        let r = report();
        assert!((r.utilization() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn utilization_guards_degenerate_reports() {
        let r = PoolReport::default();
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn steals_count_claims_beyond_even_split() {
        let r = report();
        // fair = 5 / 2 = 2, worker 0 claimed 3 → one steal.
        assert_eq!(r.steal_count(), 1);
        assert_eq!(PoolReport::default().steal_count(), 0);
    }

    #[test]
    fn summary_line_mentions_the_label() {
        let line = report().summary_line();
        assert!(line.contains("fig5/cells"));
        assert!(line.contains("5 cells"));
        assert!(line.contains("imbalance"));
    }

    #[test]
    fn imbalance_is_max_over_mean_busy_time() {
        // busy = [9, 5]: mean 7, max 9 → 9/7.
        let r = report();
        assert!((r.imbalance() - 9.0 / 7.0).abs() < 1e-12);
        // An even split reads exactly 1.0.
        let mut even = report();
        even.per_worker = vec![
            WorkerLoad {
                cells: 2,
                busy_ms: 4.0
            };
            2
        ];
        assert!((even.imbalance() - 1.0).abs() < 1e-12);
        // Degenerate reports stay finite.
        assert_eq!(PoolReport::default().imbalance(), 0.0);
    }
}
