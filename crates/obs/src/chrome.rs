//! Chrome `trace_event` JSON export.
//!
//! The output loads directly into `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev) (legacy JSON mode): one *process*
//! per simulation cell, with rows for the morph window, per-class stall
//! windows, per-context borrow windows, and instant markers for faults and
//! request completions. Everything is converted to a shared microsecond
//! axis via each [`TraceLog`]'s `ticks_per_us`.
//!
//! The builder is deliberately string-based: output bytes are a pure
//! function of the input logs (no maps with nondeterministic iteration, no
//! timestamps from the host clock), which is what lets the test-suite
//! assert byte equality between 1-worker and 8-worker runs.

use crate::registry::{escape, json_f64};
use crate::trace::{RemoteKind, ThreadTag, TraceEvent, TraceLog};
use std::collections::{BTreeMap, VecDeque};

/// Virtual-thread rows within one cell's process.
const TID_MORPH: u64 = 1;
const TID_STALL_MASTER: u64 = 2;
const TID_STALL_FILLER: u64 = 3;
const TID_STALL_LENDER: u64 = 4;
const TID_FAULTS: u64 = 5;
const TID_REQUESTS: u64 = 6;
const TID_DISPATCH: u64 = 7;
const TID_PURGE: u64 = 8;
/// Borrow rows start here (one per virtual-context id, modulo 32).
const TID_BORROW_BASE: u64 = 16;

fn stall_tid(tag: ThreadTag) -> u64 {
    match tag {
        ThreadTag::Master => TID_STALL_MASTER,
        ThreadTag::Filler => TID_STALL_FILLER,
        ThreadTag::Lender => TID_STALL_LENDER,
    }
}

/// One cell's event stream → `trace_event` array entries.
struct CellWriter<'a> {
    pid: usize,
    ticks_per_us: f64,
    out: &'a mut Vec<String>,
}

impl CellWriter<'_> {
    fn us(&self, ticks: u64) -> String {
        json_f64(ticks as f64 / self.ticks_per_us.max(f64::MIN_POSITIVE))
    }

    fn span(&mut self, name: &str, tid: u64, begin: u64, end: u64, args: &str) {
        let ts = self.us(begin);
        let dur = self.us(end.saturating_sub(begin));
        self.out.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}",
            escape(name),
            self.pid,
        ));
    }

    fn instant(&mut self, name: &str, tid: u64, at: u64, args: &str) {
        let ts = self.us(at);
        self.out.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}",
            escape(name),
            self.pid,
        ));
    }
}

/// Renders `cells` — `(label, log)` pairs in the caller's (deterministic)
/// order — as a complete Chrome `trace_event` JSON document.
#[must_use]
pub fn chrome_trace_json(cells: &[(String, TraceLog)]) -> String {
    let mut entries: Vec<String> = Vec::new();
    for (pid, (label, log)) in cells.iter().enumerate() {
        entries.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            escape(label),
        ));
        let horizon = log.events.iter().map(TraceEvent::at).max().unwrap_or(0);
        let mut w = CellWriter {
            pid,
            ticks_per_us: log.ticks_per_us,
            out: &mut entries,
        };

        // Pairing state. Begin/end events pair FIFO per row; FIFO order is
        // emission order, so pairing is deterministic by construction.
        let mut open_morph: Option<(u64, &'static str)> = None;
        let mut open_stalls: BTreeMap<(ThreadTag, RemoteKind), VecDeque<u64>> = BTreeMap::new();
        let mut open_borrows: BTreeMap<u64, u64> = BTreeMap::new();

        for ev in &log.events {
            match *ev {
                TraceEvent::MorphIn { at, cause } => {
                    open_morph = Some((at, cause.name()));
                }
                TraceEvent::MorphOut { at } => {
                    if let Some((begin, cause)) = open_morph.take() {
                        w.span(
                            "morph",
                            TID_MORPH,
                            begin,
                            at,
                            &format!("\"cause\":\"{cause}\""),
                        );
                    }
                }
                TraceEvent::StallBegin { at, kind, tag } => {
                    open_stalls.entry((tag, kind)).or_default().push_back(at);
                }
                TraceEvent::StallEnd { at, kind, tag } => {
                    if let Some(begin) = open_stalls
                        .get_mut(&(tag, kind))
                        .and_then(VecDeque::pop_front)
                    {
                        w.span(
                            &format!("stall:{}", kind.name()),
                            stall_tid(tag),
                            begin,
                            at,
                            &format!("\"thread\":\"{}\"", tag.name()),
                        );
                    }
                }
                TraceEvent::FillerBorrow { at, ctx } => {
                    open_borrows.insert(ctx, at);
                }
                TraceEvent::FillerReturn { at, ctx, reason } => {
                    if let Some(begin) = open_borrows.remove(&ctx) {
                        w.span(
                            &format!("borrow:ctx{ctx}"),
                            TID_BORROW_BASE + ctx % 32,
                            begin,
                            at,
                            &format!("\"reason\":\"{}\"", reason.name()),
                        );
                    }
                }
                TraceEvent::FaultInject { at, kind, dropped } => {
                    w.instant(
                        "fault_inject",
                        TID_FAULTS,
                        at,
                        &format!("\"kind\":\"{}\",\"dropped\":{dropped}", kind.name()),
                    );
                }
                TraceEvent::FaultRetry { at, kind, attempts } => {
                    w.instant(
                        "fault_retry",
                        TID_FAULTS,
                        at,
                        &format!("\"kind\":\"{}\",\"attempts\":{attempts}", kind.name()),
                    );
                }
                TraceEvent::FaultTimeout { at, kind } => {
                    w.instant(
                        "fault_timeout",
                        TID_FAULTS,
                        at,
                        &format!("\"kind\":\"{}\"", kind.name()),
                    );
                }
                TraceEvent::RequestArrive { at } => {
                    w.instant("request_arrive", TID_REQUESTS, at, "");
                }
                TraceEvent::Dispatch {
                    at,
                    server,
                    queue_len,
                } => {
                    w.instant(
                        "dispatch",
                        TID_DISPATCH,
                        at,
                        &format!("\"server\":{server},\"queue_len\":{queue_len}"),
                    );
                }
                TraceEvent::RequestComplete { at, latency } => {
                    let lat_us = json_f64(latency as f64 / log.ticks_per_us.max(f64::MIN_POSITIVE));
                    w.instant(
                        "request_complete",
                        TID_REQUESTS,
                        at,
                        &format!("\"latency_us\":{lat_us}"),
                    );
                }
                TraceEvent::HedgeFire { at, server } => {
                    w.instant(
                        "hedge_fire",
                        TID_DISPATCH,
                        at,
                        &format!("\"server\":{server}"),
                    );
                }
                TraceEvent::Purge {
                    at,
                    server,
                    in_service,
                } => {
                    w.instant(
                        "purge",
                        TID_PURGE,
                        at,
                        &format!("\"server\":{server},\"in_service\":{in_service}"),
                    );
                }
            }
        }

        // Close windows still open at the end of the record against the
        // last observed timestamp, so truncated rings still render.
        if let Some((begin, cause)) = open_morph {
            w.span(
                "morph",
                TID_MORPH,
                begin,
                horizon.max(begin),
                &format!("\"cause\":\"{cause}\",\"open\":true"),
            );
        }
        for ((tag, kind), begins) in &open_stalls {
            for &begin in begins {
                w.span(
                    &format!("stall:{}", kind.name()),
                    stall_tid(*tag),
                    begin,
                    horizon.max(begin),
                    &format!("\"thread\":\"{}\",\"open\":true", tag.name()),
                );
            }
        }
        for (&ctx, &begin) in &open_borrows {
            w.span(
                &format!("borrow:ctx{ctx}"),
                TID_BORROW_BASE + ctx % 32,
                begin,
                horizon.max(begin),
                "\"open\":true",
            );
        }
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Why a Chrome trace payload failed validation in [`parse_trace_events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The payload is not valid JSON at all.
    InvalidJson(String),
    /// The top level is valid JSON but not an object.
    NotAnObject,
    /// The top-level object has no `traceEvents` field.
    MissingTraceEvents,
    /// `traceEvents` exists but is not an array.
    TraceEventsNotArray,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::InvalidJson(e) => write!(f, "malformed trace JSON: {e}"),
            TraceParseError::NotAnObject => f.write_str("trace document is not a JSON object"),
            TraceParseError::MissingTraceEvents => {
                f.write_str("trace document has no `traceEvents` field")
            }
            TraceParseError::TraceEventsNotArray => f.write_str("`traceEvents` is not an array"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a Chrome `trace_event` document and extracts the `traceEvents`
/// array, reporting malformed payloads as a typed [`TraceParseError`]
/// instead of panicking — external trace files (or truncated exports)
/// must not abort the tooling that inspects them.
///
/// # Errors
///
/// [`TraceParseError::InvalidJson`] on a syntax error, `NotAnObject` /
/// `MissingTraceEvents` / `TraceEventsNotArray` on shape mismatches.
pub fn parse_trace_events(json: &str) -> Result<Vec<serde_json::Value>, TraceParseError> {
    let v =
        serde_json::parse_value(json).map_err(|e| TraceParseError::InvalidJson(e.to_string()))?;
    if !matches!(v, serde_json::Value::Object(_)) {
        return Err(TraceParseError::NotAnObject);
    }
    match v.get_field("traceEvents") {
        None => Err(TraceParseError::MissingTraceEvents),
        Some(serde_json::Value::Array(items)) => Ok(items.clone()),
        Some(_) => Err(TraceParseError::TraceEventsNotArray),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MorphTrigger, ReturnReason, Tracer};

    fn sample_log() -> TraceLog {
        let t = Tracer::enabled(64, 3400.0);
        t.emit(|| TraceEvent::RequestArrive { at: 0 });
        t.emit(|| TraceEvent::StallBegin {
            at: 100,
            kind: RemoteKind::RemoteMemory,
            tag: ThreadTag::Master,
        });
        t.emit(|| TraceEvent::StallEnd {
            at: 6900,
            kind: RemoteKind::RemoteMemory,
            tag: ThreadTag::Master,
        });
        t.emit(|| TraceEvent::MorphIn {
            at: 120,
            cause: MorphTrigger::Stall,
        });
        t.emit(|| TraceEvent::FillerBorrow { at: 140, ctx: 2 });
        t.emit(|| TraceEvent::FillerReturn {
            at: 6800,
            ctx: 2,
            reason: ReturnReason::Evict,
        });
        t.emit(|| TraceEvent::MorphOut { at: 6920 });
        t.emit(|| TraceEvent::FaultRetry {
            at: 6900,
            kind: RemoteKind::RemoteMemory,
            attempts: 2,
        });
        t.emit(|| TraceEvent::RequestComplete {
            at: 7000,
            latency: 7000,
        });
        t.take()
    }

    #[test]
    fn export_parses_and_contains_the_morph_window() {
        let json = chrome_trace_json(&[("dyad0".to_string(), sample_log())]);
        let items = parse_trace_events(&json).expect("well-formed export");
        assert!(items.len() >= 6, "got {}", items.len());
        assert!(json.contains("\"name\":\"morph\""));
        assert!(json.contains("\"cause\":\"stall\""));
        assert!(json.contains("borrow:ctx2"));
        assert!(json.contains("fault_retry"));
        assert!(json.contains("process_name"));
    }

    #[test]
    fn malformed_payloads_are_typed_errors_not_panics() {
        // Truncated JSON (a cut-off export is the common real-world case).
        assert!(matches!(
            parse_trace_events("{\"traceEvents\":[{\"name\":"),
            Err(TraceParseError::InvalidJson(_))
        ));
        // Valid JSON, wrong top-level shape.
        assert_eq!(
            parse_trace_events("[1,2,3]"),
            Err(TraceParseError::NotAnObject)
        );
        // An object without the required field.
        assert_eq!(
            parse_trace_events("{\"displayTimeUnit\":\"ms\"}"),
            Err(TraceParseError::MissingTraceEvents)
        );
        // The field present but not an array.
        assert_eq!(
            parse_trace_events("{\"traceEvents\":42}"),
            Err(TraceParseError::TraceEventsNotArray)
        );
        // And every error renders a human-readable message.
        let msg = parse_trace_events("not json").unwrap_err().to_string();
        assert!(msg.contains("malformed"), "{msg}");
    }

    #[test]
    fn dispatch_events_render_on_their_own_row() {
        let t = Tracer::enabled(8, 1000.0);
        t.emit(|| TraceEvent::RequestArrive { at: 1000 });
        t.emit(|| TraceEvent::Dispatch {
            at: 1000,
            server: 3,
            queue_len: 2,
        });
        t.emit(|| TraceEvent::RequestComplete {
            at: 5000,
            latency: 4000,
        });
        let json = chrome_trace_json(&[("farm".to_string(), t.take())]);
        assert!(parse_trace_events(&json).is_ok(), "{json}");
        assert!(json.contains("\"name\":\"dispatch\""));
        assert!(json.contains("\"server\":3,\"queue_len\":2"));
        assert!(json.contains(&format!("\"tid\":{TID_DISPATCH},")));
    }

    #[test]
    fn hedge_and_purge_events_render_as_instants() {
        let t = Tracer::enabled(8, 1000.0);
        t.emit(|| TraceEvent::RequestArrive { at: 1000 });
        t.emit(|| TraceEvent::HedgeFire {
            at: 21_000,
            server: 1,
        });
        t.emit(|| TraceEvent::Purge {
            at: 30_000,
            server: 1,
            in_service: true,
        });
        let json = chrome_trace_json(&[("farm".to_string(), t.take())]);
        assert!(parse_trace_events(&json).is_ok(), "{json}");
        assert!(json.contains("\"name\":\"hedge_fire\""));
        assert!(json.contains("\"name\":\"purge\""));
        assert!(json.contains("\"server\":1,\"in_service\":true"));
        assert!(json.contains(&format!("\"tid\":{TID_PURGE},")));
    }

    #[test]
    fn timestamps_convert_to_microseconds() {
        let json = chrome_trace_json(&[("c".to_string(), sample_log())]);
        // The 6800-cycle stall at 3400 cycles/µs spans 2µs: ts 100/3400.
        assert!(
            json.contains("\"dur\":2,"),
            "expected a 2µs stall span in {json}"
        );
    }

    #[test]
    fn export_is_deterministic() {
        let cells = vec![
            ("a".to_string(), sample_log()),
            ("b".to_string(), sample_log()),
        ];
        assert_eq!(chrome_trace_json(&cells), chrome_trace_json(&cells));
    }

    #[test]
    fn unclosed_windows_still_render() {
        let t = Tracer::enabled(8, 1000.0);
        t.emit(|| TraceEvent::MorphIn {
            at: 5,
            cause: MorphTrigger::Idle,
        });
        t.emit(|| TraceEvent::FillerBorrow { at: 6, ctx: 0 });
        t.emit(|| TraceEvent::RequestArrive { at: 50 });
        let json = chrome_trace_json(&[("open".to_string(), t.take())]);
        assert!(serde_json::parse_value(&json).is_ok(), "{json}");
        assert!(json.contains("\"open\":true"));
    }

    #[test]
    fn empty_cells_export_metadata_only() {
        let json = chrome_trace_json(&[("empty".to_string(), TraceLog::default())]);
        assert!(serde_json::parse_value(&json).is_ok(), "{json}");
        assert!(json.contains("empty"));
    }
}
