//! A deterministic log-bucketed latency sketch (DDSketch/HDR-style).
//!
//! [`LatencySketch`] summarizes a stream of non-negative latencies into
//! geometrically spaced buckets with a *fixed* geometry chosen at
//! construction from a relative-accuracy target `alpha`: bucket `k` covers
//! `(γ^(k-1), γ^k]` with `γ = (1 + α) / (1 − α)`, and every bucket reports
//! the representative value `2·γ^k / (1 + γ)` — the point whose relative
//! distance to both bucket edges is exactly `α`. Any quantile extracted
//! from the sketch is therefore within relative error `α` of the exact
//! sample quantile (for samples ≥ [`MIN_POSITIVE_US`]; smaller values
//! collapse into a zero bucket whose representative is `0`).
//!
//! ## Exact, replication-order merge
//!
//! The sketch deliberately stores **no floating-point accumulator**: its
//! retained state is `u64` bucket counts plus `min`/`max` (both of which
//! combine associatively and exactly for non-NaN inputs). Merging the
//! per-replication sketches of a partitioned stream — in any grouping —
//! is therefore *bit-identical* to sketching the concatenated stream,
//! which is what lets the cluster engines pool replications under the
//! exec-pool determinism contract (and what the property suite asserts as
//! full structural equality, not approximate agreement).
//!
//! ## Quantile convention
//!
//! [`LatencySketch::quantile`] uses the workspace's nearest-rank rule —
//! `rank = clamp(ceil(q·n), 1, n)` — the exact convention of the
//! sorted-vector `QuantileEstimator` in `duplexity-stats`, so a sketch
//! quantile and an exact quantile of the same stream always name the same
//! order statistic and differ only by the bucket rounding bounded above.
//!
//! Consumes zero RNG draws, like everything in this crate.

/// Default relative-accuracy target: quantiles within ±1%.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Samples below this (µs) land in the zero bucket: 10⁻⁹ µs is one
/// femtosecond, far below any latency the simulators can produce, and the
/// cutoff bounds the bucket range for pathological inputs.
pub const MIN_POSITIVE_US: f64 = 1e-9;

/// A mergeable log-bucketed histogram with bounded relative error.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySketch {
    /// Relative-accuracy target α (fixed at construction).
    alpha: f64,
    /// Bucket base γ = (1 + α) / (1 − α).
    gamma: f64,
    /// 1 / ln γ, cached for the per-record index computation.
    inv_ln_gamma: f64,
    /// Key of `buckets[0]`; meaningless while `buckets` is empty.
    min_key: i64,
    /// Contiguous bucket counts for keys `min_key ..`.
    buckets: Vec<u64>,
    /// Samples below [`MIN_POSITIVE_US`] (representative value 0).
    zero: u64,
    /// Total samples recorded.
    count: u64,
    /// Exact smallest sample (`+inf` when empty).
    min: f64,
    /// Exact largest sample (`-inf` when empty).
    max: f64,
    /// Non-finite samples rejected by [`LatencySketch::record`]. Counted
    /// (instead of silently dropped) so a sketch whose `count()` drifts
    /// from the exact-vector count has a diagnostic to point at.
    dropped_nonfinite: u64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencySketch {
    /// A sketch at the default ±1% accuracy ([`DEFAULT_ALPHA`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_accuracy(DEFAULT_ALPHA)
    }

    /// A sketch whose quantiles carry relative error at most `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    #[must_use]
    pub fn with_accuracy(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "relative accuracy must be in (0, 1)"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            gamma,
            inv_ln_gamma: gamma.ln().recip(),
            min_key: 0,
            buckets: Vec::new(),
            zero: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            dropped_nonfinite: 0,
        }
    }

    /// The documented relative-error bound α.
    #[must_use]
    pub fn relative_accuracy(&self) -> f64 {
        self.alpha
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Non-finite samples rejected by [`LatencySketch::record`] (they
    /// never enter `count()`). A non-zero value explains any sketch-vs-
    /// exact-vector count disagreement, so the engines surface it through
    /// the registry instead of letting the drift pass silently.
    #[must_use]
    pub fn dropped_nonfinite(&self) -> u64 {
        self.dropped_nonfinite
    }

    /// Exact smallest recorded sample.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded sample.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Allocated bucket span (the memory footprint driver; grows with the
    /// log of the sample dynamic range, not the sample count).
    #[must_use]
    pub fn bucket_span(&self) -> usize {
        self.buckets.len()
    }

    /// Bucket key of a positive sample: the smallest `k` with `γ^k ≥ v`.
    fn key_of(&self, v: f64) -> i64 {
        // ceil() maps the half-open bucket (γ^(k-1), γ^k] to k; an exact
        // power of γ stays in its own bucket.
        (v.ln() * self.inv_ln_gamma).ceil() as i64
    }

    /// The representative value of bucket `key`: relative distance exactly
    /// α to both bucket edges.
    fn value_of(&self, key: i64) -> f64 {
        2.0 * self.gamma.powi(key as i32) / (1.0 + self.gamma)
    }

    /// Grows `buckets` to include `key` and returns its index.
    fn slot(&mut self, key: i64) -> usize {
        if self.buckets.is_empty() {
            self.min_key = key;
            self.buckets.push(0);
            return 0;
        }
        if key < self.min_key {
            let grow = (self.min_key - key) as usize;
            self.buckets.splice(0..0, std::iter::repeat_n(0, grow));
            self.min_key = key;
        }
        let idx = (key - self.min_key) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        idx
    }

    /// Records one sample. Non-finite samples are rejected (the engines
    /// never produce them; `inf` would otherwise poison the geometry) and
    /// tallied in [`LatencySketch::dropped_nonfinite`] so the drop is
    /// observable rather than silent.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped_nonfinite += 1;
            return;
        }
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < MIN_POSITIVE_US {
            self.zero += 1;
            return;
        }
        let key = self.key_of(v);
        let idx = self.slot(key);
        self.buckets[idx] += 1;
    }

    /// Nearest-rank quantile (`rank = clamp(ceil(q·n), 1, n)`), `None` when
    /// empty. The result is the representative value of the bucket holding
    /// the rank-th order statistic: within relative error α of the exact
    /// sample quantile (exact 0 for zero-bucket samples).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero {
            return Some(0.0);
        }
        let mut seen = self.zero;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.value_of(self.min_key + i as i64));
            }
        }
        // Counts are internally consistent; this is unreachable, but the
        // exact max is the honest answer if it ever weren't.
        Some(self.max)
    }

    /// Folds `other` into `self` by exact `u64` bucket addition. Because
    /// every retained field combines associatively, merging per-partition
    /// sketches (in any grouping) is bit-identical to sketching the
    /// concatenated stream.
    ///
    /// # Panics
    ///
    /// Panics if the two sketches were built with different accuracies
    /// (their geometries are incompatible).
    pub fn merge(&mut self, other: &LatencySketch) {
        assert!(
            self.alpha == other.alpha,
            "cannot merge sketches of different accuracy ({} vs {})",
            self.alpha,
            other.alpha
        );
        self.count += other.count;
        self.zero += other.zero;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.dropped_nonfinite += other.dropped_nonfinite;
        // Zero-count buckets still widen the span, so a merge reproduces
        // the concatenated stream's allocation exactly (full structural
        // equality, not just equal counts).
        for (i, &c) in other.buckets.iter().enumerate() {
            let idx = self.slot(other.min_key + i as i64);
            self.buckets[idx] += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = LatencySketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.99), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn quantiles_stay_within_alpha_of_exact() {
        let mut s = LatencySketch::new();
        // A deterministic heavy-tail-ish stream spanning several decades.
        let mut vals: Vec<f64> = (1..=5000u64)
            .map(|i| {
                let x = (i as f64) * 0.7315;
                0.05 + (x.sin().abs() + 1.0) * (1.0 + (i % 97) as f64) * 0.9
            })
            .collect();
        for &v in &vals {
            s.record(v);
        }
        vals.sort_by(f64::total_cmp);
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&vals, q);
            let approx = s.quantile(q).unwrap();
            assert!(
                (approx - exact).abs() <= s.relative_accuracy() * exact + 1e-12,
                "q={q}: sketch {approx} vs exact {exact}"
            );
        }
        assert_eq!(s.count(), 5000);
        assert_eq!(s.min(), Some(*vals.first().unwrap()));
        assert_eq!(s.max(), Some(*vals.last().unwrap()));
    }

    #[test]
    fn merge_equals_concatenated_stream() {
        let parts: [&[f64]; 3] = [&[1.0, 220.0, 3.5], &[0.002, 17.0], &[5.0e4, 1.0, 0.3, 88.8]];
        let mut merged = LatencySketch::new();
        let mut concat = LatencySketch::new();
        for part in parts {
            let mut s = LatencySketch::new();
            for &v in part {
                s.record(v);
                concat.record(v);
            }
            merged.merge(&s);
        }
        assert_eq!(merged, concat, "merge must be exact, not approximate");
    }

    #[test]
    fn zero_and_subnormal_samples_report_zero() {
        let mut s = LatencySketch::new();
        s.record(0.0);
        s.record(1e-300);
        s.record(10.0);
        assert_eq!(s.quantile(0.5).unwrap(), 0.0);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn non_finite_samples_are_counted_as_dropped() {
        let mut s = LatencySketch::new();
        s.record(f64::INFINITY);
        s.record(f64::NEG_INFINITY);
        s.record(f64::NAN);
        assert!(s.is_empty(), "non-finite samples never enter count()");
        assert_eq!(s.dropped_nonfinite(), 3);
        s.record(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.dropped_nonfinite(), 3);
        // The drop counter merges additively like every other field.
        let mut other = LatencySketch::new();
        other.record(f64::NAN);
        s.merge(&other);
        assert_eq!(s.dropped_nonfinite(), 4);
        assert_eq!(s.count(), 1);
    }

    #[test]
    #[should_panic(expected = "different accuracy")]
    fn mismatched_geometry_refuses_to_merge() {
        let mut a = LatencySketch::new();
        let b = LatencySketch::with_accuracy(0.05);
        a.merge(&b);
    }

    #[test]
    fn bucket_span_grows_with_range_not_count() {
        let mut s = LatencySketch::new();
        for _ in 0..10_000 {
            s.record(5.0);
        }
        assert_eq!(s.bucket_span(), 1);
        s.record(5.1);
        assert!(s.bucket_span() < 16, "nearby values share few buckets");
    }
}
