//! The cycle-domain event tracer: typed events, a bounded ring recorder,
//! and the cheaply cloneable [`Tracer`] handle simulators embed.

use crate::registry::Registry;
use crate::timeseries::TimeSeriesSet;
use std::cell::RefCell;
use std::rc::Rc;

/// Which thread class an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ThreadTag {
    /// The latency-critical master-thread on the master-core.
    Master,
    /// A borrowed filler-thread executing on the morphed master-core.
    Filler,
    /// A batch thread executing on the lender-core.
    Lender,
}

impl ThreadTag {
    /// Stable lowercase name (used in trace/metric paths).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ThreadTag::Master => "master",
            ThreadTag::Filler => "filler",
            ThreadTag::Lender => "lender",
        }
    }
}

/// What opened a morph window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MorphTrigger {
    /// Master-thread blocked on a µs-scale remote access.
    Stall,
    /// Master-thread out of requests (inter-request idleness).
    Idle,
}

impl MorphTrigger {
    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MorphTrigger::Stall => "stall",
            MorphTrigger::Idle => "idle",
        }
    }
}

/// Why a filler virtual context was returned to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReturnReason {
    /// The context issued a µs-scale remote access and was parked.
    Stall,
    /// The context ran out of work and was parked until its next arrival.
    Idle,
    /// The 100µs HSMT quantum expired with other contexts waiting.
    Quantum,
    /// The master-thread resumed and evicted every borrowed context.
    Evict,
}

impl ReturnReason {
    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReturnReason::Stall => "stall",
            ReturnReason::Idle => "idle",
            ReturnReason::Quantum => "quantum",
            ReturnReason::Evict => "evict",
        }
    }
}

/// The kind of µs-scale remote event (mirrors the net crate's `EventKind`
/// without depending on it — obs sits below every simulator crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RemoteKind {
    /// Remote-memory (RDMA-class) access.
    RemoteMemory,
    /// Fast-NVM access.
    Nvm,
    /// One RPC fan-out leg.
    RpcLeg,
}

impl RemoteKind {
    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RemoteKind::RemoteMemory => "remote_memory",
            RemoteKind::Nvm => "nvm",
            RemoteKind::RpcLeg => "rpc_leg",
        }
    }
}

/// One typed observation in the emitter's native tick domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Master-core morphed into the in-order filler engine.
    MorphIn {
        /// Trigger cycle.
        at: u64,
        /// What opened the hole.
        cause: MorphTrigger,
    },
    /// Master-core morphed back; the master-thread resumes.
    MorphOut {
        /// Resume cycle.
        at: u64,
    },
    /// A thread began a µs-scale stall.
    StallBegin {
        /// Issue cycle.
        at: u64,
        /// Remote event kind.
        kind: RemoteKind,
        /// Stalling thread's class.
        tag: ThreadTag,
    },
    /// The matching stall resolved.
    StallEnd {
        /// Completion cycle.
        at: u64,
        /// Remote event kind.
        kind: RemoteKind,
        /// Stalling thread's class.
        tag: ThreadTag,
    },
    /// A filler virtual context was borrowed from the shared pool.
    FillerBorrow {
        /// Borrow cycle.
        at: u64,
        /// Virtual-context id.
        ctx: u64,
    },
    /// A filler virtual context went back to the pool.
    FillerReturn {
        /// Return cycle.
        at: u64,
        /// Virtual-context id.
        ctx: u64,
        /// Why it was returned.
        reason: ReturnReason,
    },
    /// The fault layer dropped at least one leg of a remote event.
    FaultInject {
        /// Observation tick.
        at: u64,
        /// Remote event kind.
        kind: RemoteKind,
        /// Legs lost to drops within this event.
        dropped: u32,
    },
    /// A remote event needed more than one attempt.
    FaultRetry {
        /// Observation tick.
        at: u64,
        /// Remote event kind.
        kind: RemoteKind,
        /// Total attempts issued (≥ 2).
        attempts: u32,
    },
    /// A remote event was abandoned after the attempt cap.
    FaultTimeout {
        /// Observation tick.
        at: u64,
        /// Remote event kind.
        kind: RemoteKind,
    },
    /// A request arrived (open-loop injection or queueing arrival).
    RequestArrive {
        /// Arrival tick.
        at: u64,
    },
    /// A cluster balancer routed a request to a server.
    Dispatch {
        /// Dispatch tick (the request's arrival instant).
        at: u64,
        /// Chosen server index.
        server: u32,
        /// The chosen server's queue length *before* this request joined.
        queue_len: u32,
    },
    /// A request completed.
    RequestComplete {
        /// Completion tick.
        at: u64,
        /// End-to-end latency in ticks.
        latency: u64,
    },
    /// A deadline-triggered hedge fired: the primary copy outlived its
    /// latency budget, so a duplicate was dispatched.
    HedgeFire {
        /// Hedge-dispatch tick (primary arrival + hedge deadline).
        at: u64,
        /// Server the duplicate copy was routed to.
        server: u32,
    },
    /// A sibling copy was purged after its request's first completion.
    Purge {
        /// Purge tick (the winning copy's completion instant).
        at: u64,
        /// Server the purged copy was queued on / running at.
        server: u32,
        /// `true` if the copy had already started service (abandoned
        /// mid-service), `false` if it was still waiting in queue.
        in_service: bool,
    },
}

impl TraceEvent {
    /// The event's timestamp in native ticks.
    #[must_use]
    pub fn at(&self) -> u64 {
        match *self {
            TraceEvent::MorphIn { at, .. }
            | TraceEvent::MorphOut { at }
            | TraceEvent::StallBegin { at, .. }
            | TraceEvent::StallEnd { at, .. }
            | TraceEvent::FillerBorrow { at, .. }
            | TraceEvent::FillerReturn { at, .. }
            | TraceEvent::FaultInject { at, .. }
            | TraceEvent::FaultRetry { at, .. }
            | TraceEvent::FaultTimeout { at, .. }
            | TraceEvent::RequestArrive { at }
            | TraceEvent::Dispatch { at, .. }
            | TraceEvent::RequestComplete { at, .. }
            | TraceEvent::HedgeFire { at, .. }
            | TraceEvent::Purge { at, .. } => at,
        }
    }

    /// Stable snake_case event name (registry paths, Chrome event names).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::MorphIn { .. } => "morph_in",
            TraceEvent::MorphOut { .. } => "morph_out",
            TraceEvent::StallBegin { .. } => "stall_begin",
            TraceEvent::StallEnd { .. } => "stall_end",
            TraceEvent::FillerBorrow { .. } => "filler_borrow",
            TraceEvent::FillerReturn { .. } => "filler_return",
            TraceEvent::FaultInject { .. } => "fault_inject",
            TraceEvent::FaultRetry { .. } => "fault_retry",
            TraceEvent::FaultTimeout { .. } => "fault_timeout",
            TraceEvent::RequestArrive { .. } => "request_arrive",
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::RequestComplete { .. } => "request_complete",
            TraceEvent::HedgeFire { .. } => "hedge_fire",
            TraceEvent::Purge { .. } => "purge",
        }
    }
}

/// A bounded drop-oldest ring of events.
#[derive(Debug, Default)]
struct Ring {
    buf: Vec<TraceEvent>,
    head: usize,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Self {
            buf: Vec::new(),
            head: 0,
            cap: cap.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Drains the ring into emission order (oldest surviving event first).
    fn drain(&mut self) -> Vec<TraceEvent> {
        let head = self.head;
        self.head = 0;
        let mut out = std::mem::take(&mut self.buf);
        out.rotate_left(head);
        out
    }
}

#[derive(Debug)]
struct Sink {
    ring: Ring,
    registry: Registry,
    ticks_per_us: f64,
    /// Fixed-bin gauge/counter series, opted into per run
    /// ([`Tracer::with_timeseries`]); `None` keeps sampling sites at one
    /// branch, like disabled emission.
    series: Option<TimeSeriesSet>,
}

/// The extracted, thread-safe record of one cell's trace.
///
/// This is what crosses `ExecPool` worker boundaries: plain data, `Send`,
/// and fully determined by the cell's seed and grid coordinates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Events in emission order (oldest surviving first).
    pub events: Vec<TraceEvent>,
    /// Events lost to the ring cap (0 means the record is complete).
    pub dropped: u64,
    /// Native ticks per microsecond (cycles/µs for CPU sims, 1000 for the
    /// nanosecond-domain queueing DES).
    pub ticks_per_us: f64,
    /// Registry counters/observations flushed by the traced simulator.
    pub registry: Registry,
    /// Event-clock time series, present when the tracer was built with
    /// [`Tracer::with_timeseries`] and the simulator sampled any gauge.
    pub timeseries: Option<TimeSeriesSet>,
}

/// A cheaply cloneable handle to a per-cell trace sink.
///
/// `Tracer::default()` / [`Tracer::disabled`] is a no-op handle: every
/// emission is a single `Option` test and the event payload closure is
/// never run. An enabled tracer is `Rc`-shared between the engines of one
/// simulation cell (a cell is single-threaded by construction, see the
/// exec-pool determinism contract), and [`Tracer::take`] extracts the
/// `Send`able [`TraceLog`] at the end of the run.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<Sink>>>,
}

impl Tracer {
    /// A no-op handle (the default for every simulator).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording handle with a `capacity`-event drop-oldest ring.
    ///
    /// `ticks_per_us` converts the emitter's native timestamps to
    /// microseconds at export time; simulators that know their own clock
    /// overwrite it via [`Tracer::set_ticks_per_us`].
    #[must_use]
    pub fn enabled(capacity: usize, ticks_per_us: f64) -> Self {
        Self {
            inner: Some(Rc::new(RefCell::new(Sink {
                ring: Ring::new(capacity),
                registry: Registry::default(),
                ticks_per_us,
                series: None,
            }))),
        }
    }

    /// Opts this (enabled) handle into event-clock time series with
    /// `bin_us`-wide bins; a no-op on a disabled handle.
    ///
    /// # Panics
    ///
    /// Panics unless `bin_us` is finite and positive (see
    /// [`TimeSeriesSet::new`]).
    #[must_use]
    pub fn with_timeseries(self, bin_us: f64) -> Self {
        if let Some(s) = &self.inner {
            s.borrow_mut().series = Some(TimeSeriesSet::new(bin_us));
        }
        self
    }

    /// Whether time-series sampling is on (enabled handle + opted in).
    #[must_use]
    pub fn has_timeseries(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|s| s.borrow().series.is_some())
    }

    /// Runs `f` against the time-series set; `f` is never called unless
    /// this handle was built with [`Tracer::with_timeseries`], so sampling
    /// sites cost one branch on every other handle.
    #[inline]
    pub fn sample(&self, f: impl FnOnce(&mut TimeSeriesSet)) {
        if let Some(s) = &self.inner {
            if let Some(ts) = s.borrow_mut().series.as_mut() {
                f(ts);
            }
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the tick-to-µs conversion for every event this sink holds.
    pub fn set_ticks_per_us(&self, ticks_per_us: f64) {
        if let Some(s) = &self.inner {
            s.borrow_mut().ticks_per_us = ticks_per_us;
        }
    }

    /// Records the event built by `f`; on a disabled handle `f` is never
    /// called, so emission sites cost one branch.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(s) = &self.inner {
            s.borrow_mut().ring.push(f());
        }
    }

    /// Adds `n` to a registry counter (no-op when disabled).
    pub fn count(&self, path: &str, n: u64) {
        if let Some(s) = &self.inner {
            s.borrow_mut().registry.incr(path, n);
        }
    }

    /// Records a sample into a registry observation (no-op when disabled).
    pub fn observe(&self, path: &str, v: f64) {
        if let Some(s) = &self.inner {
            s.borrow_mut().registry.observe(path, v);
        }
    }

    /// Drains the sink into a `Send`able [`TraceLog`]. Event-type counters
    /// are tallied into the log's registry under `events/<name>`. A
    /// disabled handle returns an empty log.
    #[must_use]
    pub fn take(&self) -> TraceLog {
        let Some(s) = &self.inner else {
            return TraceLog::default();
        };
        let mut sink = s.borrow_mut();
        let events = sink.ring.drain();
        let dropped = sink.ring.dropped;
        sink.ring.dropped = 0;
        let mut registry = std::mem::take(&mut sink.registry);
        for ev in &events {
            registry.incr(&format!("events/{}", ev.name()), 1);
        }
        if dropped > 0 {
            registry.incr("events/dropped", dropped);
        }
        let timeseries = sink.series.take().filter(|ts| !ts.is_empty());
        TraceLog {
            events,
            dropped,
            ticks_per_us: sink.ticks_per_us,
            registry,
            timeseries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(|| unreachable!("closure must not run on a disabled tracer"));
        t.count("x", 1);
        t.observe("y", 1.0);
        let log = t.take();
        assert!(log.events.is_empty());
        assert!(log.registry.is_empty());
    }

    #[test]
    fn events_come_back_in_emission_order() {
        let t = Tracer::enabled(16, 3400.0);
        t.emit(|| TraceEvent::MorphIn {
            at: 10,
            cause: MorphTrigger::Stall,
        });
        t.emit(|| TraceEvent::FillerBorrow { at: 12, ctx: 3 });
        t.emit(|| TraceEvent::MorphOut { at: 90 });
        let log = t.take();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.events[0].name(), "morph_in");
        assert_eq!(log.events[2].at(), 90);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.ticks_per_us, 3400.0);
        assert_eq!(log.registry.counter("events/morph_in"), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::enabled(4, 1.0);
        for i in 0..10u64 {
            t.emit(|| TraceEvent::RequestArrive { at: i });
        }
        let log = t.take();
        assert_eq!(log.events.len(), 4);
        assert_eq!(log.dropped, 6);
        let ats: Vec<u64> = log.events.iter().map(TraceEvent::at).collect();
        assert_eq!(ats, vec![6, 7, 8, 9], "oldest events drop first");
        assert_eq!(log.registry.counter("events/dropped"), 6);
    }

    #[test]
    fn clones_share_one_sink() {
        let t = Tracer::enabled(8, 1.0);
        let u = t.clone();
        t.emit(|| TraceEvent::RequestArrive { at: 1 });
        u.emit(|| TraceEvent::RequestComplete { at: 5, latency: 4 });
        assert_eq!(t.take().events.len(), 2);
    }

    #[test]
    fn timeseries_sampling_is_opt_in() {
        let t = Tracer::enabled(4, 1.0);
        t.sample(|_| unreachable!("sampling must be opt-in"));
        assert!(!t.has_timeseries());
        Tracer::disabled().sample(|_| unreachable!("disabled handles never sample"));
        let t = Tracer::enabled(4, 1.0).with_timeseries(10.0);
        assert!(t.has_timeseries());
        t.sample(|ts| ts.observe("g", 5.0, 2.0));
        let log = t.take();
        let ts = log.timeseries.expect("sampled series survive take");
        assert_eq!(ts.get("g").unwrap().bins()[0].count, 1);
        assert!(t.take().timeseries.is_none(), "take drains the series");
    }

    #[test]
    fn empty_timeseries_is_omitted_from_the_log() {
        let t = Tracer::enabled(4, 1.0).with_timeseries(10.0);
        assert!(t.take().timeseries.is_none());
    }

    #[test]
    fn take_drains() {
        let t = Tracer::enabled(8, 1.0);
        t.emit(|| TraceEvent::RequestArrive { at: 1 });
        assert_eq!(t.take().events.len(), 1);
        assert!(t.take().events.is_empty(), "take must drain the sink");
    }
}
