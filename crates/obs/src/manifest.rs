//! Self-describing run manifests, emitted next to every artifact.
//!
//! A [`RunManifest`] records everything needed to reproduce the artifact
//! it sits beside: the emitting tool and its crate version, and a sorted
//! key/value map of run parameters (seed, fidelity, event-queue kind,
//! grid shape, requested thread count, …). It is deliberately a *pure
//! function of the run's inputs*: no timestamps, no hostnames, no
//! resolved worker counts — wall-clock facts live in stderr-only
//! [`PoolReport`](crate::PoolReport) lines — so the manifest beside a
//! 1-worker artifact is byte-identical to the one beside the same
//! artifact produced by 8 workers.
//!
//! The `threads` key therefore records the **requested** thread count
//! (`0` means "resolve from `DUPLEXITY_THREADS` / available parallelism"),
//! never the resolved one: the resolved count varies by machine while the
//! artifact, by the exec-pool determinism contract, does not.

use crate::registry::escape;
use std::collections::BTreeMap;

/// Bumped when the manifest JSON shape changes.
pub const MANIFEST_VERSION: u32 = 1;

/// A deterministic, self-describing record of one artifact-producing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    tool: String,
    version: String,
    entries: BTreeMap<String, String>,
}

impl RunManifest {
    /// A manifest for `tool` (e.g. `report`, `bench`) at crate `version`
    /// (pass the binary's `CARGO_PKG_VERSION`). The obs crate's own
    /// version is recorded alongside under `crates`.
    #[must_use]
    pub fn new(tool: &str, version: &str) -> Self {
        Self {
            tool: tool.to_string(),
            version: version.to_string(),
            entries: BTreeMap::new(),
        }
    }

    /// Adds (or overwrites) one run parameter; values render as JSON
    /// strings, so any `Display`able value is safe.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.set(key, value);
        self
    }

    /// In-place version of [`RunManifest::with`].
    pub fn set(&mut self, key: &str, value: impl std::fmt::Display) {
        self.entries.insert(key.to_string(), value.to_string());
    }

    /// Records the RNG seed.
    #[must_use]
    pub fn seed(self, seed: u64) -> Self {
        self.with("seed", seed)
    }

    /// Records the **requested** worker-thread count (`0` = resolve from
    /// the environment). Never the resolved count — see the module docs.
    #[must_use]
    pub fn threads(self, requested: usize) -> Self {
        self.with("threads", requested)
    }

    /// Records the event-queue implementation name (`heap` / `wheel`).
    #[must_use]
    pub fn event_queue(self, name: &str) -> Self {
        self.with("event_queue", name)
    }

    /// Looks up one recorded parameter.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Deterministic JSON: fixed header fields, then the parameter map in
    /// lexicographic key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"manifest_version\": {MANIFEST_VERSION},\n  \"tool\": \"{}\",\n  \"version\": \"{}\",\n  \"crates\": {{\n    \"duplexity-obs\": \"{}\"\n  }},\n  \"run\": {{",
            escape(&self.tool),
            escape(&self.version),
            escape(env!("CARGO_PKG_VERSION")),
        );
        for (i, (k, v)) in self.entries.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": \"{}\"", escape(k), escape(v)));
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// The conventional manifest path beside an artifact: `<path>.manifest.json`.
#[must_use]
pub fn manifest_path(artifact: &std::path::Path) -> std::path::PathBuf {
    let mut name = artifact
        .file_name()
        .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
    name.push_str(".manifest.json");
    artifact.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn json_is_deterministic_and_sorted() {
        let m = RunManifest::new("report", "0.1.0")
            .seed(42)
            .threads(0)
            .event_queue("wheel")
            .with("fidelity", "Quick");
        let j = m.to_json();
        assert_eq!(j, m.clone().to_json());
        assert!(j.contains("\"manifest_version\": 1"));
        assert!(j.contains("\"seed\": \"42\""));
        assert!(j.contains("\"threads\": \"0\""));
        assert!(j.find("\"event_queue\"").unwrap() < j.find("\"fidelity\"").unwrap());
        assert_eq!(m.get("seed"), Some("42"));
    }

    #[test]
    fn manifests_ignore_wall_clock_facts_by_construction() {
        // Two "runs" differing only in resolved parallelism produce the
        // same manifest because only the requested count is recorded.
        let a = RunManifest::new("report", "0.1.0").threads(0);
        let b = RunManifest::new("report", "0.1.0").threads(0);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn manifest_path_appends_suffix() {
        assert_eq!(
            manifest_path(Path::new("out/cluster_sweep.json")),
            Path::new("out/cluster_sweep.json.manifest.json")
        );
    }

    #[test]
    fn json_parses_with_the_vendored_parser() {
        let j = RunManifest::new("bench", "0.1.0").seed(7).to_json();
        let v = serde_json::parse_value(&j).expect("valid JSON");
        assert!(v.get_field("run").is_some());
    }
}
