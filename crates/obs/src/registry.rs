//! A hierarchical counter / observation registry with deterministic JSON
//! export.
//!
//! Paths are slash-separated (`dyad/phase/morphed/retired`); storage is a
//! `BTreeMap`, so iteration — and therefore the exported JSON — is in
//! lexicographic path order regardless of emission order or worker count.

use std::collections::BTreeMap;

/// Summary of a stream of `f64` samples (no per-sample storage, so a
/// registry's size is bounded by its path count, not its sample count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Observation {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean sample, or 0 for an empty observation.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for Observation {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// The registry: named counters plus named observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    observations: BTreeMap<String, Observation>,
}

impl Registry {
    /// Adds `n` to the counter at `path` (creating it at 0).
    pub fn incr(&mut self, path: &str, n: u64) {
        *self.counters.entry(path.to_string()).or_insert(0) += n;
    }

    /// Records one sample into the observation at `path`.
    pub fn observe(&mut self, path: &str, v: f64) {
        self.observations
            .entry(path.to_string())
            .or_default()
            .record(v);
    }

    /// Current counter value (0 if absent).
    #[must_use]
    pub fn counter(&self, path: &str) -> u64 {
        self.counters.get(path).copied().unwrap_or(0)
    }

    /// Current observation (if any sample was recorded).
    #[must_use]
    pub fn observation(&self, path: &str) -> Option<&Observation> {
        self.observations.get(path)
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.observations.is_empty()
    }

    /// Counter iteration in path order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Observation iteration in path order.
    pub fn observations(&self) -> impl Iterator<Item = (&str, &Observation)> {
        self.observations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Installs a complete observation summary at `path`, replacing any
    /// existing one. A raw reconstruction hook (cache round-trips, not
    /// live recording) — pair with [`Registry::observations`] to dump and
    /// rebuild a registry exactly.
    pub fn set_observation(&mut self, path: &str, o: Observation) {
        self.observations.insert(path.to_string(), o);
    }

    /// Folds `other` into `self`, prefixing every path with `prefix`
    /// (pass `""` for an in-place merge). Counters add; observations
    /// combine their summaries.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &Registry) {
        let key = |k: &str| {
            if prefix.is_empty() {
                k.to_string()
            } else {
                format!("{prefix}/{k}")
            }
        };
        for (k, &v) in &other.counters {
            *self.counters.entry(key(k)).or_insert(0) += v;
        }
        for (k, o) in &other.observations {
            let mine = self.observations.entry(key(k)).or_default();
            mine.count += o.count;
            mine.sum += o.sum;
            mine.min = mine.min.min(o.min);
            mine.max = mine.max.max(o.max);
        }
    }

    /// Deterministic flat-metrics JSON: two objects keyed by path, in
    /// lexicographic order. Floats render through Rust's shortest
    /// round-trip formatting, which is platform-independent; non-finite
    /// values render as `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": {v}", escape(k)));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"observations\": {");
        for (i, (k, o)) in self.observations.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}}}",
                escape(k),
                o.count,
                json_f64(o.sum),
                json_f64(o.min),
                json_f64(o.max),
                json_f64(o.mean()),
            ));
        }
        if !self.observations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Formats an `f64` as a JSON number (`null` when non-finite).
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::default();
        r.incr("a/b", 2);
        r.incr("a/b", 3);
        assert_eq!(r.counter("a/b"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn observations_summarize() {
        let mut r = Registry::default();
        for v in [4.0, 1.0, 7.0] {
            r.observe("lat", v);
        }
        let o = r.observation("lat").unwrap();
        assert_eq!(o.count, 3);
        assert_eq!(o.min, 1.0);
        assert_eq!(o.max, 7.0);
        assert!((o.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_prefixed_adds_and_combines() {
        let mut a = Registry::default();
        a.incr("n", 1);
        a.observe("x", 2.0);
        let mut b = Registry::default();
        b.incr("n", 4);
        b.observe("x", 6.0);
        a.merge_prefixed("", &b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.observation("x").unwrap().count, 2);

        let mut top = Registry::default();
        top.merge_prefixed("cell0", &a);
        assert_eq!(top.counter("cell0/n"), 5);
        assert_eq!(top.counter("n"), 0);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let mut r = Registry::default();
        r.incr("z", 1);
        r.incr("a", 2);
        r.observe("m", 1.5);
        let j = r.to_json();
        assert_eq!(j, r.clone().to_json());
        let a = j.find("\"a\"").unwrap();
        let z = j.find("\"z\"").unwrap();
        assert!(a < z, "paths must export in sorted order");
        assert!(j.contains("\"mean\": 1.5"));
    }

    #[test]
    fn json_parses_with_the_vendored_parser() {
        let mut r = Registry::default();
        r.incr("events/morph_in", 7);
        r.observe("hole_cycles", 3400.0);
        let v = serde_json::parse_value(&r.to_json()).expect("valid JSON");
        let c = v.get_field("counters").expect("counters object");
        assert!(c.get_field("events/morph_in").is_some());
    }

    #[test]
    fn empty_registry_exports_empty_objects() {
        let j = Registry::default().to_json();
        assert!(serde_json::parse_value(&j).is_ok(), "{j}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }
}
