//! # duplexity-obs
//!
//! A zero-RNG, deterministic observability layer for the Duplexity
//! simulators: a cycle-domain event tracer, a hierarchical counter /
//! observation registry, a log-bucketed latency sketch
//! ([`LatencySketch`]), fixed-bin event-clock time series
//! ([`TimeSeriesSet`]), self-describing run manifests ([`RunManifest`]),
//! Chrome `trace_event` + flat-metrics JSON exporters, and an
//! [`ExecPool`](PoolReport) load observer.
//!
//! ## Determinism contract
//!
//! The whole layer obeys three rules, in order of importance:
//!
//! 1. **No RNG draws, ever.** Nothing in this crate takes a random-number
//!    generator; attaching a tracer to a simulator cannot perturb its
//!    sample path, so results with tracing on are bitwise equal to results
//!    with tracing off.
//! 2. **Off by default, near-zero when off.** A disabled [`Tracer`] is a
//!    `None`; every emission site goes through [`Tracer::emit`], whose
//!    closure argument is never even constructed on the disabled path.
//!    Golden fixtures are therefore byte-identical whether or not the
//!    tracing plumbing exists.
//! 3. **Worker-count independence.** A tracer is per-cell (one simulation
//!    owns one handle); cells return their extracted [`TraceLog`]s through
//!    the pool's index-addressed slots, so the merged trace is
//!    bit-identical for any `DUPLEXITY_THREADS`. Wall-clock data
//!    ([`PoolReport`]) is *never* folded into trace or metrics artifacts —
//!    it only reaches stderr via [`log_line`].
//!
//! ## Event taxonomy
//!
//! [`TraceEvent`] covers the transients the paper's claims live in: morph
//! in/out, µs-stall begin/end (tagged master / filler / lender), filler
//! borrow/return against the HSMT context pool, fault injection / retry /
//! timeout, and request arrive/complete. Timestamps are in the *emitter's*
//! native tick domain (cycles for the CPU simulators, nanoseconds for the
//! queueing DES); each [`TraceLog`] carries its `ticks_per_us` so the
//! Chrome exporter can place every stream on one microsecond axis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod logx;
pub mod manifest;
pub mod poolobs;
pub mod registry;
pub mod sketch;
pub mod timeseries;
pub mod trace;

pub use chrome::{chrome_trace_json, parse_trace_events, TraceParseError};
pub use logx::{log_enabled, log_line};
pub use manifest::{manifest_path, RunManifest};
pub use poolobs::{PoolReport, WorkerLoad};
pub use registry::{Observation, Registry};
pub use sketch::LatencySketch;
pub use timeseries::{Bin, TimeSeries, TimeSeriesSet};
pub use trace::{MorphTrigger, RemoteKind, ReturnReason, ThreadTag, TraceEvent, TraceLog, Tracer};
