//! Env-gated stderr progress lines.
//!
//! Setting `DUPLEXITY_LOG` to any non-empty value other than `0` turns on
//! one-line per-experiment summaries on stderr; a value of `2` (or higher)
//! additionally enables verbose artifact-bookkeeping lines. The variable
//! is read **once per process** and the parsed level is cached in a
//! `OnceLock`, so the hot experiment loops never re-enter `std::env`.
//! Logging never touches stdout, never feeds artifacts, and therefore can
//! never perturb golden fixtures.

use std::sync::OnceLock;

/// Parsed `DUPLEXITY_LOG` level, cached for the process lifetime:
/// `0` = off, `1` = summary lines, `2+` = verbose.
fn level() -> u8 {
    static LEVEL: OnceLock<u8> = OnceLock::new();
    *LEVEL.get_or_init(|| match std::env::var("DUPLEXITY_LOG") {
        Err(_) => 0,
        Ok(v) if v.is_empty() || v == "0" => 0,
        Ok(v) => v.parse::<u8>().unwrap_or(1).max(1),
    })
}

/// True when `DUPLEXITY_LOG` is set to a non-empty value other than `0`.
#[must_use]
pub fn log_enabled() -> bool {
    level() >= 1
}

/// True when `DUPLEXITY_LOG` requests verbose output (`2` or higher).
#[must_use]
pub fn log_verbose() -> bool {
    level() >= 2
}

/// Writes one `[duplexity] …` line to stderr when [`log_enabled`].
pub fn log_line(msg: &str) {
    if log_enabled() {
        eprintln!("[duplexity] {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_is_stable_across_calls() {
        // The gate is process-cached; whatever it reports first, it must
        // keep reporting (tests may run with or without the env var set).
        let first = log_enabled();
        assert_eq!(first, log_enabled());
        // Verbose implies enabled, and both are stable.
        if log_verbose() {
            assert!(log_enabled());
        }
        assert_eq!(log_verbose(), log_verbose());
        // log_line must be safe to call in either state.
        log_line("test line");
    }
}
