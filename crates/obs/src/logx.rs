//! Env-gated stderr progress lines.
//!
//! Setting `DUPLEXITY_LOG` to any non-empty value other than `0` turns on
//! one-line per-experiment summaries on stderr. The gate is read once per
//! process and cached; logging never touches stdout, never feeds artifacts,
//! and therefore can never perturb golden fixtures.

use std::sync::OnceLock;

/// True when `DUPLEXITY_LOG` is set to a non-empty value other than `0`.
#[must_use]
pub fn log_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("DUPLEXITY_LOG")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Writes one `[duplexity] …` line to stderr when [`log_enabled`].
pub fn log_line(msg: &str) {
    if log_enabled() {
        eprintln!("[duplexity] {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_is_stable_across_calls() {
        // The gate is process-cached; whatever it reports first, it must
        // keep reporting (tests may run with or without the env var set).
        let first = log_enabled();
        assert_eq!(first, log_enabled());
        // log_line must be safe to call in either state.
        log_line("test line");
    }
}
