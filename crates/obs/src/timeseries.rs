//! Fixed-bin gauge/counter time series sampled on the pure event clock.
//!
//! A [`TimeSeriesSet`] holds named series sharing one bin width (µs of
//! simulated time). Each bin summarizes the samples landing in it —
//! count, sum, min, max, and the last sample in event order — so a gauge
//! (queue depth, busy servers) reads naturally as `last`/`mean` per bin
//! and a counter-style series (purges) as `count`/`sum` per bin.
//!
//! Like everything in this crate the series consume **zero RNG draws** and
//! are a pure function of the simulated sample path: bin indices come from
//! the event clock, storage is a `BTreeMap`, and the exported JSON
//! iterates in lexicographic name order, so two runs of the same cell are
//! byte-identical regardless of worker count or tracing topology.

use crate::registry::{escape, json_f64};
use std::collections::BTreeMap;

/// Ceiling on bins per series: later samples clamp into the final bin
/// instead of growing without bound (a guard against degenerate bin
/// widths, not something the engines hit — they run bounded horizons).
pub const MAX_BINS: usize = 1 << 20;

/// One bin's summary of the samples that landed in it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Samples in this bin.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Last sample in event order (the natural gauge reading).
    pub last: f64,
}

impl Default for Bin {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
        }
    }
}

impl Bin {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.last = v;
    }

    /// Mean sample, or 0 for an empty bin.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One named series: dense bins from simulated time zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    bins: Vec<Bin>,
}

impl TimeSeries {
    /// The dense bin array (index `i` covers `[i·bin_us, (i+1)·bin_us)`).
    #[must_use]
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Total samples across all bins.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.bins.iter().map(|b| b.count).sum()
    }

    fn record(&mut self, idx: usize, v: f64) {
        let idx = idx.min(MAX_BINS - 1);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, Bin::default());
        }
        self.bins[idx].record(v);
    }
}

/// A set of named series over one shared bin width.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesSet {
    bin_us: f64,
    series: BTreeMap<String, TimeSeries>,
}

impl TimeSeriesSet {
    /// An empty set with `bin_us`-wide bins.
    ///
    /// # Panics
    ///
    /// Panics unless `bin_us` is finite and positive.
    #[must_use]
    pub fn new(bin_us: f64) -> Self {
        assert!(
            bin_us.is_finite() && bin_us > 0.0,
            "bin width must be finite and positive"
        );
        Self {
            bin_us,
            series: BTreeMap::new(),
        }
    }

    /// The shared bin width, µs.
    #[must_use]
    pub fn bin_us(&self) -> f64 {
        self.bin_us
    }

    /// True when no series holds any sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Records `v` into `name`'s bin at simulated time `t_us` (negative
    /// times clamp to bin 0).
    pub fn observe(&mut self, name: &str, t_us: f64, v: f64) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = {
            let raw = t_us / self.bin_us;
            if raw.is_finite() && raw > 0.0 {
                raw as usize
            } else {
                0
            }
        };
        self.series
            .entry(name.to_string())
            .or_default()
            .record(idx, v);
    }

    /// Looks up one series by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Installs a complete bin summary at index `idx` of series `name`,
    /// replacing any existing bin (intermediate bins pad with empty
    /// defaults). A raw reconstruction hook (cache round-trips, not live
    /// recording): re-inserting every non-empty bin of a dumped series
    /// rebuilds it exactly, because live recording never leaves a
    /// trailing empty bin.
    pub fn insert_bin(&mut self, name: &str, idx: usize, bin: Bin) {
        let idx = idx.min(MAX_BINS - 1);
        let series = self.series.entry(name.to_string()).or_default();
        if idx >= series.bins.len() {
            series.bins.resize(idx + 1, Bin::default());
        }
        series.bins[idx] = bin;
    }

    /// Series iteration in lexicographic name order.
    pub fn series(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`, prefixing every series name with
    /// `prefix` (pass `""` for an in-place merge). Bins combine pairwise;
    /// `last` takes the merged-in series' reading for bins it touched, so
    /// a replication-order fold is a pure function of the ordered parts.
    ///
    /// # Panics
    ///
    /// Panics if the two sets disagree on the bin width.
    pub fn merge_prefixed(&mut self, prefix: &str, other: &TimeSeriesSet) {
        assert!(
            self.bin_us == other.bin_us,
            "cannot merge series of different bin widths ({} vs {})",
            self.bin_us,
            other.bin_us
        );
        for (name, theirs) in &other.series {
            let key = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            let mine = self.series.entry(key).or_default();
            if mine.bins.len() < theirs.bins.len() {
                mine.bins.resize(theirs.bins.len(), Bin::default());
            }
            for (m, t) in mine.bins.iter_mut().zip(&theirs.bins) {
                if t.count == 0 {
                    continue;
                }
                m.count += t.count;
                m.sum += t.sum;
                m.min = m.min.min(t.min);
                m.max = m.max.max(t.max);
                m.last = t.last;
            }
        }
    }

    /// Deterministic JSON: `bin_us` plus one array of non-empty bins per
    /// series, in lexicographic name order. Floats render through Rust's
    /// shortest round-trip formatting (platform-independent); byte
    /// equality of two exports is bit equality of every finite float.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"bin_us\": {},\n  \"series\": {{",
            json_f64(self.bin_us)
        );
        for (si, (name, series)) in self.series.iter().enumerate() {
            let sep = if si == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{}\": [", escape(name)));
            let mut first = true;
            for (i, b) in series.bins.iter().enumerate() {
                if b.count == 0 {
                    continue;
                }
                let sep = if first { "" } else { "," };
                first = false;
                out.push_str(&format!(
                    "{sep}\n      {{\"bin\": {i}, \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"last\": {}}}",
                    b.count,
                    json_f64(b.sum),
                    json_f64(b.min),
                    json_f64(b.max),
                    json_f64(b.mean()),
                    json_f64(b.last),
                ));
            }
            if !first {
                out.push_str("\n    ");
            }
            out.push(']');
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_their_bins() {
        let mut ts = TimeSeriesSet::new(10.0);
        ts.observe("q", 0.0, 3.0);
        ts.observe("q", 9.99, 5.0);
        ts.observe("q", 10.0, 7.0);
        ts.observe("q", 35.0, 1.0);
        let s = ts.get("q").unwrap();
        assert_eq!(s.bins().len(), 4);
        assert_eq!(s.bins()[0].count, 2);
        assert_eq!(s.bins()[0].last, 5.0);
        assert_eq!(s.bins()[0].max, 5.0);
        assert_eq!(s.bins()[1].count, 1);
        assert_eq!(s.bins()[2].count, 0);
        assert_eq!(s.bins()[3].min, 1.0);
        assert_eq!(s.samples(), 4);
    }

    #[test]
    fn negative_and_nonfinite_times_clamp_to_bin_zero() {
        let mut ts = TimeSeriesSet::new(1.0);
        ts.observe("g", -5.0, 1.0);
        ts.observe("g", f64::NAN, 2.0);
        assert_eq!(ts.get("g").unwrap().bins()[0].count, 2);
    }

    #[test]
    fn json_is_deterministic_sorted_and_sparse() {
        let mut ts = TimeSeriesSet::new(2.0);
        ts.observe("z/depth", 5.0, 4.0);
        ts.observe("a/depth", 0.5, 2.0);
        let j = ts.to_json();
        assert_eq!(j, ts.clone().to_json());
        assert!(j.find("\"a/depth\"").unwrap() < j.find("\"z/depth\"").unwrap());
        assert!(j.contains("\"bin\": 2"), "{j}");
        assert!(!j.contains("\"bin\": 1"), "empty bins must not export: {j}");
    }

    #[test]
    fn merge_prefixed_combines_bins() {
        let mut a = TimeSeriesSet::new(1.0);
        a.observe("g", 0.5, 1.0);
        let mut b = TimeSeriesSet::new(1.0);
        b.observe("g", 0.7, 3.0);
        b.observe("g", 2.1, 9.0);
        a.merge_prefixed("", &b);
        let g = a.get("g").unwrap();
        assert_eq!(g.bins()[0].count, 2);
        assert_eq!(g.bins()[0].last, 3.0, "merged-in reading wins its bins");
        assert_eq!(g.bins()[2].count, 1);

        let mut top = TimeSeriesSet::new(1.0);
        top.merge_prefixed("cell0", &a);
        assert!(top.get("cell0/g").is_some());
        assert!(top.get("g").is_none());
    }

    #[test]
    #[should_panic(expected = "different bin widths")]
    fn mismatched_bin_widths_refuse_to_merge() {
        let mut a = TimeSeriesSet::new(1.0);
        a.merge_prefixed("", &TimeSeriesSet::new(2.0));
    }

    #[test]
    fn empty_set_exports_valid_json() {
        let j = TimeSeriesSet::new(1.0).to_json();
        assert!(j.contains("\"series\": {}"));
    }
}
