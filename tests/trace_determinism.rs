//! The observability layer's determinism contract, end to end.
//!
//! Three guarantees (see `crates/obs`):
//!
//! 1. **Tracing off changes nothing** — `run_fig5_traced(opts, None)`
//!    returns the same cells as `run_fig5` (the golden tests exercise the
//!    untraced path byte-for-byte; here we check the traced entry point
//!    degenerates to it exactly).
//! 2. **Tracing on changes nothing either** — the tracer consumes no RNG
//!    draws, so the figure cells are bit-identical with tracing enabled.
//! 3. **Traces are worker-count independent** — the exported Chrome JSON
//!    and metrics JSON are byte-identical at 1 and 8 workers.

use duplexity::experiments::fig5::{run_fig5, run_fig5_traced, Fig5Options, TraceConfig};
use duplexity::{chrome_trace_json, Design, Workload};
use duplexity_queueing::des::Mg1Options;

fn fig5_opts(threads: usize) -> Fig5Options {
    // The golden fixture's grid (tests/golden.rs), so any divergence here
    // would also be a golden regression.
    Fig5Options {
        loads: vec![0.3, 0.6],
        workloads: vec![Workload::McRouter],
        designs: vec![Design::Baseline, Design::Duplexity],
        horizon_cycles: 500_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        ..Fig5Options::default()
    }
}

fn assert_cells_equal(
    a: &[duplexity::experiments::fig5::Fig5Cell],
    b: &[duplexity::experiments::fig5::Fig5Cell],
    what: &str,
) {
    assert_eq!(a.len(), b.len(), "{what}");
    for (x, y) in a.iter().zip(b) {
        let at = format!("{what} cell ({:?}, {:?}, {})", x.design, x.workload, x.load);
        assert_eq!(x.utilization, y.utilization, "{at}");
        assert_eq!(x.perf_density_norm, y.perf_density_norm, "{at}");
        assert_eq!(x.energy_norm, y.energy_norm, "{at}");
        assert_eq!(x.p99_us, y.p99_us, "{at}");
        assert_eq!(x.iso_p99_norm, y.iso_p99_norm, "{at}");
        assert_eq!(x.stp_norm, y.stp_norm, "{at}");
        assert_eq!(x.service_slowdown, y.service_slowdown, "{at}");
        assert_eq!(x.remote_ops_per_us, y.remote_ops_per_us, "{at}");
    }
}

#[test]
fn tracing_off_is_the_untraced_run() {
    let plain = run_fig5(&fig5_opts(1));
    let run = run_fig5_traced(&fig5_opts(1), None);
    assert!(run.traces.is_empty(), "no tracer requested, no logs");
    assert!(run.registry.is_empty(), "no tracer requested, no counters");
    assert_cells_equal(&plain, &run.cells, "untraced entry point");
}

#[test]
fn tracing_on_does_not_perturb_the_cells() {
    let plain = run_fig5(&fig5_opts(1));
    let traced = run_fig5_traced(&fig5_opts(1), Some(&TraceConfig::default()));
    assert!(!traced.traces.is_empty());
    assert_cells_equal(&plain, &traced.cells, "traced vs untraced");
}

#[test]
fn trace_artifacts_are_bit_identical_across_worker_counts() {
    let cfg = TraceConfig::default();
    let one = run_fig5_traced(&fig5_opts(1), Some(&cfg));
    let eight = run_fig5_traced(&fig5_opts(8), Some(&cfg));

    assert_cells_equal(&one.cells, &eight.cells, "1 vs 8 workers");

    // Same labels, same event streams, in the same deterministic order.
    assert_eq!(one.traces.len(), eight.traces.len());
    for ((la, a), (lb, b)) in one.traces.iter().zip(&eight.traces) {
        assert_eq!(la, lb);
        assert_eq!(a.events, b.events, "{la}");
        assert_eq!(a.dropped, b.dropped, "{la}");
        assert_eq!(a.ticks_per_us, b.ticks_per_us, "{la}");
    }

    // And the exported artifacts agree byte for byte.
    assert_eq!(
        chrome_trace_json(&one.traces),
        chrome_trace_json(&eight.traces)
    );
    assert_eq!(one.registry.to_json(), eight.registry.to_json());
}

#[test]
fn chrome_export_parses_and_holds_the_morph_story() {
    let run = run_fig5_traced(&fig5_opts(1), Some(&TraceConfig::default()));
    let json = chrome_trace_json(&run.traces);
    let items =
        duplexity_obs::parse_trace_events(&json).expect("chrome trace JSON parses as traceEvents");
    assert!(!items.is_empty(), "a traced grid produces events");

    // Duplexity cells morph; the baseline never does. Count morph windows by
    // the exported event names.
    let names: Vec<&str> = items
        .iter()
        .filter_map(|e| e.get_field("name"))
        .filter_map(|n| match n {
            serde_json::Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        names.contains(&"morph"),
        "Duplexity cells must record morph windows"
    );
    assert!(
        names.iter().any(|n| n.starts_with("stall")),
        "remote stalls must appear as spans"
    );

    // The registry aggregated per-cell morph counters under cell labels.
    let metrics = run.registry.to_json();
    assert!(
        metrics.contains("dyad/morphs"),
        "metrics JSON must carry per-cell morph counts: {metrics}"
    );
}
