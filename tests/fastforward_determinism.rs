//! The quiescence fast-forward bit-identity contract.
//!
//! `Stepping::FastForward` skips cycle spans only when every active engine
//! proves (via `next_event_cycle`) that stepping them would change nothing
//! but counters — no RNG draws, no retirement, no morph decisions. These
//! tests run every design both ways and demand *exact* equality:
//!
//! 1. **Metrics** — `DesignMetrics` (which derives `PartialEq`) must be
//!    identical for every design preset, open-loop and saturated.
//! 2. **Dyad metrics** — `DyadSim::run` vs `DyadSim::run_naive` must yield
//!    identical `DyadMetrics` for every dyad configuration, including a
//!    stall-heavy master that morphs repeatedly.
//! 3. **Artifacts** — with tracing enabled, the exported Chrome JSON and
//!    metrics-registry JSON must be byte-identical across steppings.
//! 4. **Grid** — a fast-forwarded Figure 5 grid matches the naive grid
//!    cell-for-cell at 1 and 8 workers.

use duplexity::experiments::fig5::{run_fig5, run_fig5_traced, Fig5Options, TraceConfig};
use duplexity::{chrome_trace_json, Design, Workload};
use duplexity_cpu::designs::{
    run_design_stepped, run_design_traced_stepped, DesignMetrics, Scenario, Stepping,
};
use duplexity_cpu::dyad::{DyadConfig, DyadSim};
use duplexity_cpu::op::{LoopedTrace, MicroOp, Op};
use duplexity_obs::Tracer;
use duplexity_queueing::des::Mg1Options;
use duplexity_stats::rng::rng_from_seed;
use duplexity_workloads::graph::FillerFactory;

const HORIZON: u64 = 400_000;

fn run_one(design: Design, load: Option<f64>, stepping: Stepping) -> DesignMetrics {
    let workload = Workload::McRouter;
    let scenario = Scenario {
        load,
        service_us: workload.nominal_service_us(),
        horizon_cycles: HORIZON,
        seed: 42,
    };
    let fillers = FillerFactory::paper(42);
    run_design_stepped(
        design,
        &scenario,
        workload.kernel(42),
        |id| fillers.stream(id),
        stepping,
    )
}

#[test]
fn every_design_fast_forward_matches_naive() {
    for design in Design::ALL_WITH_EXTENSIONS {
        for load in [Some(0.5), None] {
            let naive = run_one(design, load, Stepping::Naive);
            let fast = run_one(design, load, Stepping::FastForward);
            assert_eq!(naive, fast, "{design} load {load:?}");
        }
    }
}

#[test]
fn traced_artifacts_are_byte_identical_across_steppings() {
    let workload = Workload::McRouter;
    let scenario = Scenario {
        load: Some(0.4),
        service_us: workload.nominal_service_us(),
        horizon_cycles: HORIZON,
        seed: 7,
    };
    for design in Design::ALL_WITH_EXTENSIONS {
        let trace_one = |stepping: Stepping| {
            let tracer = Tracer::enabled(1 << 16, 1000.0);
            let fillers = FillerFactory::paper(7);
            let metrics = run_design_traced_stepped(
                design,
                &scenario,
                workload.kernel(7),
                |id| fillers.stream(id),
                &tracer,
                stepping,
            );
            let log = tracer.take();
            let label = format!("ff/{design}");
            let json = chrome_trace_json(&[(label, log.clone())]);
            (metrics, json, log.registry.to_json())
        };
        let (m_naive, chrome_naive, reg_naive) = trace_one(Stepping::Naive);
        let (m_fast, chrome_fast, reg_fast) = trace_one(Stepping::FastForward);
        assert_eq!(m_naive, m_fast, "{design} traced metrics");
        assert_eq!(chrome_naive, chrome_fast, "{design} chrome trace bytes");
        assert_eq!(reg_naive, reg_fast, "{design} registry bytes");
    }
}

/// A master-thread that alternates compute bursts with µs-scale remote
/// loads — the stall-heavy shape fast-forward exists to accelerate, and the
/// one most likely to expose a probe that skips over a morph decision.
fn stall_heavy_master() -> Box<LoopedTrace> {
    let mut ops = Vec::new();
    for i in 0..48u64 {
        ops.push(MicroOp::new(i * 4, Op::IntAlu).with_dst((i % 8) as u8));
    }
    ops.push(MicroOp::new(0x400, Op::RemoteLoad { latency_us: 1.0 }));
    Box::new(LoopedTrace::new(ops))
}

fn batch_stream(id: usize) -> Box<LoopedTrace> {
    let base = 0x10_0000 * (id as u64 + 1);
    Box::new(LoopedTrace::new(
        (0..64)
            .map(|i| MicroOp::new(base + i * 4, Op::IntAlu).with_dst((i % 4) as u8))
            .collect(),
    ))
}

#[test]
fn dyad_run_matches_run_naive_for_every_config() {
    let configs: [(&str, DyadConfig); 4] = [
        ("morphcore", DyadConfig::morphcore()),
        ("morphcore_plus", DyadConfig::morphcore_plus()),
        ("duplexity_replication", DyadConfig::duplexity_replication()),
        ("duplexity", DyadConfig::duplexity()),
    ];
    for (name, cfg) in configs {
        let build = |cfg: DyadConfig| {
            let mut dyad = DyadSim::new(cfg, stall_heavy_master());
            if cfg.hsmt_fillers {
                for id in 0..16 {
                    dyad.add_batch_thread(id, batch_stream(id));
                }
            } else {
                for id in 0..8 {
                    dyad.add_fixed_filler(id, batch_stream(id));
                }
            }
            dyad
        };
        let mut naive = build(cfg);
        let mut rng_a = rng_from_seed(11);
        naive.run_naive(300_000, &mut rng_a);
        let mut fast = build(cfg);
        let mut rng_b = rng_from_seed(11);
        fast.run(300_000, &mut rng_b);
        assert_eq!(naive.metrics(), fast.metrics(), "{name}");
    }
}

fn tiny_grid(threads: usize, stepping: Stepping) -> Fig5Options {
    Fig5Options {
        loads: vec![0.3, 0.6],
        workloads: vec![Workload::McRouter],
        designs: vec![Design::Baseline, Design::Duplexity],
        horizon_cycles: 500_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        stepping,
        ..Fig5Options::default()
    }
}

#[test]
fn fig5_grid_fast_forward_matches_naive_at_1_and_8_workers() {
    let naive = run_fig5(&tiny_grid(1, Stepping::Naive));
    for threads in [1, 8] {
        let fast = run_fig5(&tiny_grid(threads, Stepping::FastForward));
        assert_eq!(naive.len(), fast.len());
        for (a, b) in naive.iter().zip(&fast) {
            let at = format!("({}, {}, {}) @ {threads}w", a.design, a.workload, a.load);
            assert_eq!(a.utilization, b.utilization, "{at}");
            assert_eq!(a.perf_density_norm, b.perf_density_norm, "{at}");
            assert_eq!(a.energy_norm, b.energy_norm, "{at}");
            assert_eq!(a.p99_us, b.p99_us, "{at}");
            assert_eq!(a.iso_p99_us, b.iso_p99_us, "{at}");
            assert_eq!(a.stp_norm, b.stp_norm, "{at}");
            assert_eq!(a.service_slowdown, b.service_slowdown, "{at}");
            assert_eq!(a.remote_ops_per_us, b.remote_ops_per_us, "{at}");
        }
    }
}

#[test]
fn fig5_traced_artifacts_identical_across_steppings() {
    let trace = TraceConfig { capacity: 1 << 14 };
    let naive = run_fig5_traced(&tiny_grid(1, Stepping::Naive), Some(&trace));
    let fast = run_fig5_traced(&tiny_grid(1, Stepping::FastForward), Some(&trace));
    assert_eq!(
        chrome_trace_json(&naive.traces),
        chrome_trace_json(&fast.traces),
        "chrome trace bytes"
    );
    assert_eq!(
        naive.registry.to_json(),
        fast.registry.to_json(),
        "registry bytes"
    );
}
