//! The observability layer's determinism and accuracy contract.
//!
//! Three guarantees (see `crates/obs` and the `timeline` driver):
//!
//! 1. **Worker-count independence** — the timeline artifact (gauge series,
//!    registry profile, endpoint cells) is byte-identical at 1 and 8
//!    [`ExecPool`](duplexity::ExecPool) workers, and so is the
//!    [`RunManifest`] beside it: the manifest records only *requested*
//!    parameters, never resolved parallelism or wall-clock facts.
//! 2. **Sketch accuracy on the sweep grids** — on every cell of a
//!    cluster-sweep-style and a hedge-sweep-style grid, the streaming
//!    [`LatencySketch`] reproduces the exact sorted-vector quantiles at
//!    p50/p95/p99/p99.9 within its documented relative-accuracy bound.
//! 3. **Observation is free** — enabling the timeseries tracer does not
//!    perturb the simulated sample path: measured results are bit-identical
//!    with tracing on and off.
//!
//! Run with `DUPLEXITY_THREADS=8` in CI to also pin the resolved-from-env
//! path (`threads: 0`) to the explicit 1-worker artifact.

mod common;

use duplexity::experiments::timeline::{timeline, TimelineOptions};
use duplexity::BalancerPolicy;
use duplexity_obs::{manifest_path, RunManifest, Tracer};
use duplexity_queueing::cluster::{
    try_simulate_cluster, try_simulate_cluster_hedged, ClusterOptions, DuplicationPolicy,
};
use duplexity_queueing::des::Mg1Options;
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::rng::{derive_stream, SimRng};
use std::path::Path;

fn timeline_opts(threads: usize) -> TimelineOptions {
    TimelineOptions {
        servers: 4,
        loads: vec![0.3, 0.6],
        queue: Mg1Options {
            max_samples: 20_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        ..TimelineOptions::default()
    }
}

#[test]
fn timeline_artifact_is_byte_identical_at_1_and_8_workers() {
    let one = timeline(&timeline_opts(1));
    let eight = timeline(&timeline_opts(8));
    let (a, b) = (one.to_json(), eight.to_json());
    assert_eq!(
        a,
        b,
        "timeline artifact diverged across worker counts: {:?}",
        common::first_mismatch(
            &serde_json::parse_value(&a).expect("valid JSON"),
            &serde_json::parse_value(&b).expect("valid JSON"),
        )
    );
    // The resolved-from-env arm (threads: 0 honours DUPLEXITY_THREADS,
    // which CI sets to 8) must land on the same bytes as both.
    assert_eq!(a, timeline(&timeline_opts(0)).to_json());
}

#[test]
fn run_manifests_record_requested_parameters_only() {
    // Manifests beside 1-worker and 8-worker artifacts are byte-identical
    // because they record the *requested* thread count (0 = resolve from
    // the environment) and nothing wall-clock dependent. Build one per arm
    // exactly the way the report binary does.
    let build = || {
        RunManifest::new("report", "0.1.0")
            .seed(42)
            .threads(0)
            .event_queue("wheel")
            .with("fidelity", "Quick")
            .with("artifact", "timeline")
    };
    assert_eq!(build().to_json(), build().to_json());
    // The sidecar convention: artifact path + ".manifest.json".
    assert_eq!(
        manifest_path(Path::new("out/TIMELINE.json")),
        Path::new("out/TIMELINE.json.manifest.json")
    );
    // A resolved thread count must never appear: the recorded value is the
    // requested sentinel, whatever the host resolves it to.
    assert_eq!(build().get("threads"), Some("0"));
}

/// Asserts the sketch's p50/p95/p99/p99.9 stay within its documented
/// relative-accuracy bound of the exact sorted-vector quantiles.
fn assert_sketch_tracks_exact(cell: &str, mut r: duplexity_queueing::cluster::ClusterResult) {
    assert_eq!(r.sketch.count(), r.samples as u64, "{cell}");
    // A healthy cell produces only finite sojourns; the sketch's
    // non-finite tally doubles as a corruption detector for the whole
    // grid — any NaN/inf sneaking into the measurement path trips here
    // instead of silently skewing a quantile.
    assert_eq!(
        r.sketch.dropped_nonfinite(),
        0,
        "{cell}: non-finite sojourns reached the sketch"
    );
    let alpha = r.sketch.relative_accuracy();
    for q in [0.5, 0.95, 0.99, 0.999] {
        let exact = r.sojourn_samples.quantile(q).expect("non-empty cell");
        let approx = r.sketch.quantile(q).expect("non-empty cell");
        assert!(
            (approx - exact).abs() <= alpha * exact,
            "{cell} q{q}: sketch {approx} vs exact {exact} (bound {alpha})"
        );
    }
}

#[test]
fn sketch_tracks_exact_quantiles_across_a_cluster_sweep_grid() {
    // The cluster-sweep grid shape: policies x server counts x loads, one
    // legacy-engine run per cell, cell seeds derived the sweep's way.
    let mean_service = 2.0;
    for policy in [BalancerPolicy::Random, BalancerPolicy::Jsq] {
        for servers in [4usize, 16] {
            for load in [0.3, 0.6, 0.8] {
                let lambda = servers as f64 * load / mean_service;
                let opts = ClusterOptions {
                    servers,
                    max_samples: 20_000,
                    warmup: 1_000,
                    seed: derive_stream(
                        42,
                        0xC105 ^ ((load * 1000.0) as u64) ^ ((servers as u64) << 32),
                    ),
                    ..ClusterOptions::default()
                };
                let service = Exponential::new(mean_service);
                let mut svc = |rng: &mut SimRng| service.sample(rng);
                let mut balancer = policy.build();
                let r = try_simulate_cluster(
                    lambda,
                    &mut svc,
                    balancer.as_mut(),
                    &opts,
                    &Tracer::disabled(),
                )
                .expect("unsaturated grid cell");
                assert_sketch_tracks_exact(&format!("{policy} {servers}s @{load}"), r);
            }
        }
    }
}

#[test]
fn sketch_tracks_exact_quantiles_across_a_hedge_sweep_grid() {
    // The hedge-sweep grid shape: duplication plans x loads on a JSQ farm,
    // one event-engine run per cell.
    let mean_service = 2.0;
    let servers = 8usize;
    let plans = [
        DuplicationPolicy::none(),
        DuplicationPolicy::duplicate(2),
        DuplicationPolicy::duplicate(2).at_low_priority(),
        DuplicationPolicy::hedge(20.0),
    ];
    for plan in &plans {
        for load in [0.25, 0.4] {
            let lambda = servers as f64 * load / mean_service;
            let opts = ClusterOptions {
                servers,
                max_samples: 20_000,
                warmup: 1_000,
                seed: derive_stream(
                    42,
                    0x4ED6 ^ ((load * 1000.0) as u64) ^ ((servers as u64) << 32),
                ),
                ..ClusterOptions::default()
            };
            let service = Exponential::new(mean_service);
            let mut svc = |rng: &mut SimRng| service.sample(rng);
            let mut balancer = BalancerPolicy::Jsq.build();
            let r = try_simulate_cluster_hedged(
                lambda,
                &mut svc,
                balancer.as_mut(),
                plan,
                &opts,
                &Tracer::disabled(),
            )
            .expect("unsaturated grid cell");
            assert_sketch_tracks_exact(&format!("{} {servers}s @{load}", plan.label()), r.cluster);
        }
    }
}

#[test]
fn timeseries_tracing_does_not_perturb_the_sample_path() {
    // Observation must be free: the same cell with and without a
    // timeseries-enabled tracer lands on bit-identical measurements.
    let mean_service = 2.0;
    let servers = 4usize;
    let lambda = servers as f64 * 0.6 / mean_service;
    let opts = ClusterOptions {
        servers,
        max_samples: 10_000,
        warmup: 1_000,
        seed: derive_stream(42, 0x0b5),
        ..ClusterOptions::default()
    };
    let run = |tracer: &Tracer| {
        let service = Exponential::new(mean_service);
        let mut svc = |rng: &mut SimRng| service.sample(rng);
        let mut balancer = BalancerPolicy::Jsq.build();
        try_simulate_cluster_hedged(
            lambda,
            &mut svc,
            balancer.as_mut(),
            &DuplicationPolicy::hedge(10.0),
            &opts,
            tracer,
        )
        .expect("stable cell")
    };
    let plain = run(&Tracer::disabled());
    let traced = run(&Tracer::enabled(1 << 10, 1000.0).with_timeseries(500.0));
    assert_eq!(plain.cluster.samples, traced.cluster.samples);
    assert_eq!(
        plain.cluster.tail_us.to_bits(),
        traced.cluster.tail_us.to_bits()
    );
    assert_eq!(
        plain.cluster.mean_sojourn_us.to_bits(),
        traced.cluster.mean_sojourn_us.to_bits()
    );
    assert_eq!(plain.cluster.sketch, traced.cluster.sketch);
}
