//! Property-based tests for the streaming latency sketch's two contracts.
//!
//! 1. **Exact merge** — partition any stream into per-replication chunks,
//!    sketch each chunk independently, and fold the chunks back together in
//!    replication order: the merged sketch is *structurally equal* (full
//!    `PartialEq`, every bucket and bound) to the sketch of the concatenated
//!    stream. This is the property that lets the cluster engines pool
//!    replication sketches under the exec-pool determinism contract — no
//!    float accumulator, so no association error to hide.
//! 2. **Bounded error** — every extracted quantile is within the sketch's
//!    documented relative accuracy of the exact nearest-rank quantile of
//!    the sorted stream (`rank = clamp(ceil(q·n), 1, n)`, the convention
//!    `QuantileEstimator` shares).

use duplexity_obs::LatencySketch;
use proptest::prelude::*;

/// Exact nearest-rank quantile of an (unsorted) sample vector.
fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Splits `values` into `parts` contiguous replication chunks (the last
/// chunk absorbs the remainder).
fn partition(values: &[f64], parts: usize) -> Vec<&[f64]> {
    let parts = parts.clamp(1, values.len().max(1));
    let base = values.len() / parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let end = if i + 1 == parts {
            values.len()
        } else {
            start + base
        };
        out.push(&values[start..end]);
        start = end;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging per-replication sketches in replication order is bit-exact
    /// against sketching the concatenated stream — counts, bounds, and the
    /// full bucket layout, not just quantile agreement.
    #[test]
    fn replication_merge_equals_concatenated_stream(
        values in prop::collection::vec(0.001f64..50_000.0, 1..300),
        parts in 1usize..8,
    ) {
        let mut concat = LatencySketch::new();
        for &v in &values {
            concat.record(v);
        }
        let mut merged = LatencySketch::new();
        for chunk in partition(&values, parts) {
            let mut rep = LatencySketch::new();
            for &v in chunk {
                rep.record(v);
            }
            merged.merge(&rep);
        }
        prop_assert_eq!(&merged, &concat, "merge must be structural equality");
        prop_assert_eq!(merged.count(), values.len() as u64);
    }

    /// Every quantile of the merged sketch lands within the documented
    /// relative-accuracy bound of the exact sorted-vector quantile.
    #[test]
    fn quantiles_stay_within_the_documented_bound(
        values in prop::collection::vec(0.001f64..50_000.0, 1..300),
        parts in 1usize..8,
    ) {
        let mut merged = LatencySketch::new();
        for chunk in partition(&values, parts) {
            let mut rep = LatencySketch::new();
            for &v in chunk {
                rep.record(v);
            }
            merged.merge(&rep);
        }
        let alpha = merged.relative_accuracy();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&values, q);
            let approx = merged.quantile(q).expect("non-empty stream");
            prop_assert!(
                (approx - exact).abs() <= alpha * exact + 1e-12,
                "q{}: sketch {} vs exact {} (bound {})",
                q, approx, exact, alpha
            );
        }
        // The extreme order statistics are tracked exactly, not bucketed.
        prop_assert_eq!(merged.min().unwrap(), exact_quantile(&values, 0.0));
        prop_assert_eq!(merged.max().unwrap(), exact_quantile(&values, 1.0));
    }
}
