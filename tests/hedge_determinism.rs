//! The duplication/hedging sweep contract, end to end.
//!
//! Five guarantees (see `crates/queueing/src/cluster.rs` and the
//! `hedge_sweep` driver):
//!
//! 1. **Worker-count independence** — the full hedge-sweep grid is
//!    bit-identical at 1 and 8 `ExecPool` workers.
//! 2. **Tail cutting** — with common random numbers, duplicated JSQ's p99
//!    never exceeds plain JSQ's at moderate load, and the priority-queue
//!    variant adds strictly less utilization than eager no-purge
//!    duplication.
//! 3. **Golden snapshot** — a small fixed-seed grid is byte-identical to
//!    `tests/golden/hedge_sweep.json` (regenerate with `UPDATE_GOLDEN=1`).
//! 4. **Engine parity** — the event-driven hedged engine under
//!    [`DuplicationPolicy::none`] reproduces the legacy arrival-ordered
//!    cluster loop to floating-point association error (the two engines
//!    sum the same numbers in different orders, so bitwise equality is
//!    not available across them — 1e-9 relative is).
//! 5. **Queueing-theory fidelity** — low-priority duplicate queues on one
//!    server form a two-class non-preemptive priority M/M/1, so the
//!    primary-class wait must match the Cobham closed form within a
//!    replication-level confidence interval. (Only the high-priority
//!    class: duplicate arrivals are batch-correlated with primaries, which
//!    PASTA tolerates for class 1 but not for the class-2 form.)

mod common;

use duplexity::experiments::hedge_sweep::{hedge_sweep, HedgeSweepOptions, HedgeSweepPoint};
use duplexity::BalancerPolicy;
use duplexity_obs::Tracer;
use duplexity_queueing::cluster::{
    try_simulate_cluster, try_simulate_cluster_hedged, ClusterOptions, DuplicationPolicy,
};
use duplexity_queueing::des::Mg1Options;
use duplexity_queueing::mmk::Mm1PriorityAnalytic;
use duplexity_stats::ci::mean_ci;
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::rng::{derive_stream, SimRng};
use duplexity_stats::summary::Summary;

fn sweep_opts(threads: usize) -> HedgeSweepOptions {
    HedgeSweepOptions {
        policies: vec![BalancerPolicy::Jsq, BalancerPolicy::PowerOfD(2)],
        server_counts: vec![2, 8],
        // Moderate loads: even the eager no-purge plan (which doubles the
        // offered work) stays below the saturation guard.
        loads: vec![0.25, 0.4],
        seed: 42,
        queue: Mg1Options {
            max_samples: 20_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        ..HedgeSweepOptions::default()
    }
}

#[test]
fn hedge_sweep_grid_is_bit_identical_at_1_and_8_workers() {
    let one = hedge_sweep(&sweep_opts(1));
    let eight = hedge_sweep(&sweep_opts(8));
    assert_eq!(one.len(), eight.len());
    assert_eq!(one.len(), 2 * 6 * 2 * 2);
    // Bitwise equality, not tolerance: the determinism contract.
    common::assert_identical_artifacts("hedge_sweep 1 vs 8 workers", &one, &eight);
}

#[test]
fn duplicated_jsq_never_loses_to_plain_jsq_at_moderate_load() {
    let points = hedge_sweep(&sweep_opts(0));
    for p in &points {
        assert!(!p.saturated, "unexpected saturation at {p:?}");
    }
    let at = |policy: &str, plan: &str, servers: usize, load: f64| -> &HedgeSweepPoint {
        points
            .iter()
            .find(|p| {
                p.policy == policy && p.plan == plan && p.servers == servers && p.load == load
            })
            .expect("paired cell")
    };
    for &servers in &[2usize, 8] {
        for &load in &[0.25, 0.4] {
            let none = at("jsq", "none", servers, load);
            // Duplication needs spare servers to race the straggler on: on
            // the 8-server farm every duplicated/hedged plan must cut the
            // tail, while the 2-server farm (where a duplicate competes
            // with the primary for the only other queue) is exactly the
            // regime the added-load frontier exists to expose — no tail
            // claim is made there.
            if servers >= 8 {
                for plan in ["dup2", "dup2_lp", "hedge20"] {
                    let dup = at("jsq", plan, servers, load);
                    assert!(
                        dup.p99_us <= none.p99_us,
                        "{servers}s @{load}: {plan} p99 {} vs none {}",
                        dup.p99_us,
                        none.p99_us
                    );
                }
            }
            // The priority-queue variant buys its (possibly smaller) tail
            // cut for strictly less added load than eager no-purge
            // duplication, and no-purge wastes completions while the
            // purging plans waste none.
            let np = at("jsq", "dup2_np", servers, load);
            let lp = at("jsq", "dup2_lp", servers, load);
            assert!(
                lp.added_utilization < np.added_utilization,
                "{servers}s @{load}: lp {} vs np {}",
                lp.added_utilization,
                np.added_utilization
            );
            assert!(np.wasted_completions > 0, "{servers}s @{load}");
            assert_eq!(at("jsq", "dup2", servers, load).wasted_completions, 0);
        }
    }
}

#[test]
fn hedge_sweep_small_grid_matches_golden() {
    let opts = HedgeSweepOptions {
        policies: vec![BalancerPolicy::Jsq],
        server_counts: vec![4],
        loads: vec![0.25, 0.4],
        seed: 42,
        queue: Mg1Options {
            max_samples: 20_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        ..HedgeSweepOptions::default()
    };
    let points = hedge_sweep(&opts);
    assert!(
        points.iter().all(|p| !p.saturated && p.p99_us.is_finite()),
        "golden grid must stay unsaturated so every float round-trips"
    );
    common::assert_matches_golden("hedge_determinism", "hedge_sweep", &points);
}

#[test]
fn hedged_engine_with_no_duplication_matches_legacy_cluster_loop() {
    // Both engines replay the identical marked point process (same arrival
    // stream, same balancer stream, same decisions); the only daylight is
    // floating-point association — the legacy loop and the event heap sum
    // the same waits in different groupings.
    let mean_service = 2.0;
    for (servers, load) in [(1usize, 0.6), (4, 0.7)] {
        let lambda = servers as f64 * load / mean_service;
        let opts = ClusterOptions {
            servers,
            max_samples: 30_000,
            warmup: 1_000,
            seed: derive_stream(0x9A17, servers as u64),
            // Disable early stopping: the legacy loop knows each sojourn at
            // its arrival (Lindley) while the event heap only learns it at
            // completion, so a mid-run convergence verdict would cut the
            // two measured windows at different in-flight frontiers.
            max_relative_error: 0.001,
            ..ClusterOptions::default()
        };
        let mut svc_a = |rng: &mut SimRng| Exponential::new(mean_service).sample(rng);
        let mut bal_a = BalancerPolicy::Jsq.build();
        let legacy = try_simulate_cluster(
            lambda,
            &mut svc_a,
            bal_a.as_mut(),
            &opts,
            &Tracer::disabled(),
        )
        .expect("stable");
        let mut svc_b = |rng: &mut SimRng| Exponential::new(mean_service).sample(rng);
        let mut bal_b = BalancerPolicy::Jsq.build();
        let hedged = try_simulate_cluster_hedged(
            lambda,
            &mut svc_b,
            bal_b.as_mut(),
            &DuplicationPolicy::none(),
            &opts,
            &Tracer::disabled(),
        )
        .expect("stable");
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        let cell = format!("{servers}s @{load}");
        assert_eq!(legacy.samples, hedged.cluster.samples, "{cell}");
        assert_eq!(
            legacy.per_server_requests, hedged.cluster.per_server_requests,
            "{cell}: both engines must make identical dispatch decisions"
        );
        assert!(
            close(legacy.tail_us, hedged.cluster.tail_us),
            "{cell}: p99 {} vs {}",
            legacy.tail_us,
            hedged.cluster.tail_us
        );
        assert!(
            close(legacy.mean_sojourn_us, hedged.cluster.mean_sojourn_us),
            "{cell}: mean {} vs {}",
            legacy.mean_sojourn_us,
            hedged.cluster.mean_sojourn_us
        );
        assert!(
            close(legacy.mean_wait_us, hedged.cluster.mean_wait_us),
            "{cell}: wait {} vs {}",
            legacy.mean_wait_us,
            hedged.cluster.mean_wait_us
        );
        assert!(
            close(legacy.utilization, hedged.cluster.utilization),
            "{cell}: util {} vs {}",
            legacy.utilization,
            hedged.cluster.utilization
        );
    }
}

#[test]
fn low_priority_duplicates_on_one_server_match_cobham_class1_wait() {
    // One server, every request eagerly duplicated to a low-priority
    // queue, no purging: primaries are the high class of a two-class
    // non-preemptive priority M/M/1 and must obey Cobham's closed form
    // W1 = R / (1 - rho1). The duplicate class arrives in batches with
    // the primaries, so only the class-1 prediction survives (PASTA);
    // the class-2 form assumes Poisson low-class arrivals and is not
    // asserted. CI over replication means, with a 2% allowance for the
    // initial-transient bias of runs that start with an empty server.
    let mean_service = 1.0;
    let lambda = 0.4; // rho = 2 * 0.4 * 1.0 = 0.8 across both classes
    let analytic = Mm1PriorityAnalytic {
        lambda_high_per_us: lambda,
        mean_service_high_us: mean_service,
        lambda_low_per_us: lambda,
        mean_service_low_us: mean_service,
    }
    .mean_wait_high_us();

    let plan = DuplicationPolicy::duplicate(2)
        .without_purge()
        .at_low_priority();
    let mut waits = Summary::new();
    for rep in 0..8u64 {
        let opts = ClusterOptions {
            servers: 1,
            max_samples: 150_000,
            warmup: 5_000,
            // Disable early stopping: full-length replications shrink
            // both the variance and the initial-transient bias.
            max_relative_error: 0.001,
            seed: derive_stream(0xC0B4, rep),
            ..ClusterOptions::default()
        };
        let mut svc = |rng: &mut SimRng| Exponential::new(mean_service).sample(rng);
        let mut bal = BalancerPolicy::Jsq.build();
        let r = try_simulate_cluster_hedged(
            lambda,
            &mut svc,
            bal.as_mut(),
            &plan,
            &opts,
            &Tracer::disabled(),
        )
        .expect("stable two-class configuration");
        waits.record(r.cluster.mean_wait_us);
    }
    let ci = mean_ci(&waits, 0.95);
    let bias = 0.02 * analytic;
    assert!(
        analytic >= ci.low - bias && analytic <= ci.high + bias,
        "priority M/M/1 class-1 wait: CI [{}, {}] (+/- {bias:.4} bias) misses Cobham {analytic}",
        ci.low,
        ci.high
    );
}
