//! The parallel engine's determinism contract, checked cell for cell.
//!
//! Every experiment cell derives its RNG streams from the experiment seed
//! plus its grid coordinates, so the worker count must never change a single
//! bit of any result (see `duplexity::exec`). These tests run the same small
//! grids with 1 worker (the inline serial path), 2, 4, and 8 workers and
//! `assert_eq!` every field — exact floating-point equality, no tolerance.

use duplexity::experiments::fig5::{run_fig5, Fig5Options};
use duplexity::experiments::sweep::{latency_load_sweep, slo_capacity, SweepOptions};
use duplexity::{Design, Workload};
use duplexity_queueing::des::Mg1Options;

fn fig5_opts(threads: usize) -> Fig5Options {
    Fig5Options {
        loads: vec![0.3, 0.6],
        workloads: vec![Workload::McRouter],
        designs: vec![Design::Baseline, Design::Duplexity],
        horizon_cycles: 500_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        ..Fig5Options::default()
    }
}

fn sweep_opts(threads: usize) -> SweepOptions {
    SweepOptions {
        workload: Workload::McRouter,
        designs: vec![Design::Baseline, Design::Smt, Design::Duplexity],
        loads: vec![0.2, 0.5, 0.8],
        calibration_cycles: 500_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 50_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        ..SweepOptions::default()
    }
}

#[test]
fn fig5_is_bit_identical_across_worker_counts() {
    let serial = run_fig5(&fig5_opts(1));
    assert_eq!(serial.len(), 4);
    for threads in [2usize, 4, 8] {
        let parallel = run_fig5(&fig5_opts(threads));
        assert_eq!(parallel.len(), serial.len(), "threads={threads}");
        for (s, p) in serial.iter().zip(&parallel) {
            let at = format!(
                "threads={threads} cell ({:?}, {:?}, {})",
                s.design, s.workload, s.load
            );
            assert_eq!(s.design, p.design, "{at}");
            assert_eq!(s.workload, p.workload, "{at}");
            assert_eq!(s.load, p.load, "{at}");
            assert_eq!(s.utilization, p.utilization, "{at}");
            assert_eq!(s.perf_density_norm, p.perf_density_norm, "{at}");
            assert_eq!(s.energy_norm, p.energy_norm, "{at}");
            assert_eq!(s.p99_us, p.p99_us, "{at}");
            assert_eq!(s.p99_norm, p.p99_norm, "{at}");
            assert_eq!(s.iso_p99_us, p.iso_p99_us, "{at}");
            assert_eq!(s.iso_p99_norm, p.iso_p99_norm, "{at}");
            assert_eq!(s.stp_norm, p.stp_norm, "{at}");
            assert_eq!(s.saturated, p.saturated, "{at}");
            assert_eq!(s.service_slowdown, p.service_slowdown, "{at}");
            assert_eq!(s.remote_ops_per_us, p.remote_ops_per_us, "{at}");
        }
    }
}

#[test]
fn slo_sweep_is_bit_identical_across_worker_counts() {
    let serial = latency_load_sweep(&sweep_opts(1));
    assert_eq!(serial.len(), 9);
    for threads in [2usize, 8] {
        let parallel = latency_load_sweep(&sweep_opts(threads));
        assert_eq!(parallel.len(), serial.len(), "threads={threads}");
        for (s, p) in serial.iter().zip(&parallel) {
            let at = format!("threads={threads} point ({:?}, {})", s.design, s.load);
            assert_eq!(s.design, p.design, "{at}");
            assert_eq!(s.load, p.load, "{at}");
            assert_eq!(s.p99_us, p.p99_us, "{at}");
            assert_eq!(s.mean_us, p.mean_us, "{at}");
            assert_eq!(s.saturated, p.saturated, "{at}");
        }
        // The derived operator metric agrees too.
        for design in [Design::Baseline, Design::Duplexity] {
            assert_eq!(
                slo_capacity(&serial, design, 50.0),
                slo_capacity(&parallel, design, 50.0),
                "threads={threads} {design:?}"
            );
        }
    }
}

#[test]
fn auto_thread_count_matches_explicit_one_worker() {
    // threads = 0 resolves DUPLEXITY_THREADS / available parallelism; by the
    // contract its results equal the single-worker run bit for bit.
    let auto = run_fig5(&fig5_opts(0));
    let one = run_fig5(&fig5_opts(1));
    for (a, s) in auto.iter().zip(&one) {
        assert_eq!(a.utilization, s.utilization);
        assert_eq!(a.p99_us, s.p99_us);
        assert_eq!(a.iso_p99_norm, s.iso_p99_norm);
        assert_eq!(a.stp_norm, s.stp_norm);
    }
}
