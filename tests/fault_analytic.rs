//! Closed-form cross-checks of the faulted queueing path.
//!
//! Each test pits `simulate_mg1_faulted` against an exact analytic result —
//! the M/M/1 sojourn law, or Pollaczek–Khinchine with the fault layer's
//! [`FaultPlan::effective_moments`] — using confidence intervals from
//! `stats::ci` over independent replication means (8 seeds per point; the
//! CI over replication means is statistically sound where a single run's
//! autocorrelated samples are not). Seeds are fixed, so these tests are
//! deterministic: they either always pass or flag a real modeling drift.

use duplexity_net::{FaultPlan, LatencyDist, RetryPolicy};
use duplexity_queueing::des::{simulate_mg1_faulted, Mg1Options};
use duplexity_queueing::mg1::Mg1Analytic;
use duplexity_stats::ci::mean_ci;
use duplexity_stats::rng::{derive_stream, SimRng};
use duplexity_stats::summary::Summary;

const REPLICATIONS: u64 = 8;

/// Runs `REPLICATIONS` independent simulations and returns
/// (replication means of mean sojourn, replication means of p99).
fn replicate(
    lambda_per_us: f64,
    compute_us: f64,
    leg: &LatencyDist,
    plan: &FaultPlan,
) -> (Summary, Summary) {
    let mut means = Summary::new();
    let mut tails = Summary::new();
    for rep in 0..REPLICATIONS {
        let opts = Mg1Options {
            max_samples: 200_000,
            warmup: 5_000,
            // Disable the early-stopping rule: full-length replications
            // shrink both the variance and the initial-transient bias.
            max_relative_error: 0.001,
            seed: derive_stream(0xFA_C1, rep),
            ..Mg1Options::default()
        };
        let mut compute = move |_: &mut SimRng| compute_us;
        let (r, _) = simulate_mg1_faulted(lambda_per_us, &mut compute, leg, plan, &opts);
        means.record(r.mean_sojourn_us);
        tails.record(r.tail_us);
    }
    (means, tails)
}

/// Asserts `analytic` lies within `ci` widened by a 1% allowance for the
/// simulator's initial-transient bias (the queue starts empty, so finite
/// runs underestimate the steady-state mean by O(1/n); at 200k samples the
/// deficit is ~0.4%, below the allowance but above the CI half-width).
fn assert_ci_matches(ci: &duplexity_stats::ci::ConfidenceInterval, analytic: f64, what: &str) {
    let bias = 0.01 * analytic.abs();
    assert!(
        analytic >= ci.low - bias && analytic <= ci.high + bias,
        "{what}: CI [{}, {}] (+/- {bias} bias allowance) misses analytic {analytic}",
        ci.low,
        ci.high
    );
}

/// P-K prediction for a deterministic compute plus a faulted stall whose
/// first two moments come from [`FaultPlan::effective_moments`].
fn pk_prediction(lambda_per_us: f64, compute_us: f64, leg: &LatencyDist, plan: &FaultPlan) -> f64 {
    let (m1, scv) = plan
        .effective_moments(leg)
        .expect("closed-form moments exist for these plans");
    let mean_service = compute_us + m1;
    // Deterministic compute shifts the mean but not the variance.
    let var = scv * m1 * m1;
    let a = Mg1Analytic {
        lambda_per_us,
        mean_service_us: mean_service,
        service_scv: var / (mean_service * mean_service),
    };
    a.mean_sojourn_us()
}

#[test]
fn zero_fault_mm1_tail_matches_the_exponential_sojourn_law() {
    // M/M/1 at rho = 0.5 with Exp(2) service: sojourn ~ Exp(4), so the
    // mean is 4 µs and p99 = 4 ln(100) ≈ 18.42 µs.
    let leg = LatencyDist::Exponential { mean_us: 2.0 };
    let plan = FaultPlan::none();
    let (means, tails) = replicate(0.25, 0.0, &leg, &plan);
    let analytic_mean = 2.0 / (1.0 - 0.5);
    let analytic_p99 = analytic_mean * 100.0f64.ln();

    let ci = mean_ci(&means, 0.99);
    assert_ci_matches(&ci, analytic_mean, "M/M/1 mean sojourn");
    // The P² quantile estimator carries a small bias, so the tail check
    // uses a relative tolerance on the replication mean rather than a CI.
    let rel = (tails.mean() - analytic_p99).abs() / analytic_p99;
    assert!(
        rel < 0.08,
        "M/M/1 p99: simulated {} vs analytic {analytic_p99} (rel err {rel:.3})",
        tails.mean()
    );
}

#[test]
fn dropped_legs_with_retries_match_pk_on_effective_moments() {
    // Exponential service with 10% leg drops and a timeout/backoff retry
    // loop: the folded-in timeouts make the service law non-exponential,
    // and P-K over the closed-form effective moments must still predict
    // the simulated mean sojourn.
    let leg = LatencyDist::Exponential { mean_us: 2.0 };
    let plan = FaultPlan::none()
        .with_drop(0.1)
        .with_retry(RetryPolicy::new(3, 8.0, 1.0, 4.0));
    let (m1, _) = plan
        .effective_moments(&leg)
        .expect("drop+retry over an exponential leg has closed-form moments");
    let mean_service = 1.0 + m1;
    let lambda = 0.6 / mean_service; // rho = 0.6 on the effective service
    let predicted = pk_prediction(lambda, 1.0, &leg, &plan);

    let (means, _) = replicate(lambda, 1.0, &leg, &plan);
    let ci = mean_ci(&means, 0.99);
    assert_ci_matches(&ci, predicted, "faulted P-K mean sojourn");
    // Sanity: the faults made service strictly longer than the raw leg.
    assert!(m1 > 2.0, "effective stall mean {m1} should exceed raw 2.0");
}

#[test]
fn duplicate_exponential_legs_collapse_to_mm1_at_half_the_mean() {
    // Racing two iid Exp(2) legs yields Exp(1) service exactly, so with
    // lambda = 0.5 the queue is M/M/1 at rho = 0.5: mean sojourn 2 µs.
    let leg = LatencyDist::Exponential { mean_us: 2.0 };
    let plan = FaultPlan::none().with_duplicate();
    let (m1, scv) = plan
        .effective_moments(&leg)
        .expect("duplicated exponential legs have closed-form moments");
    assert!(
        (m1 - 1.0).abs() < 1e-12,
        "min of two Exp(2) has mean 1: {m1}"
    );
    assert!((scv - 1.0).abs() < 1e-12, "Exp(1) has unit SCV: {scv}");

    let (means, _) = replicate(0.5, 0.0, &leg, &plan);
    let analytic_mean = 1.0 / (1.0 - 0.5);
    let ci = mean_ci(&means, 0.99);
    assert_ci_matches(&ci, analytic_mean, "tied-request M/M/1 mean sojourn");
}
