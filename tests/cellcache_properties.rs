//! Property-based tests for the content-addressed cell cache.
//!
//! Three contracts hold the cache together:
//!
//! 1. **Digest stability** — equal options digest to equal keys, so a
//!    re-run finds its own cells.
//! 2. **Field sensitivity** — perturbing any single digested input yields
//!    a different key (no accidental aliasing between configurations),
//!    while the deliberately excluded inputs (`threads`, the per-cell
//!    `Mg1Options::seed` template) leave the key unchanged.
//! 3. **Robust decoding** — truncated, corrupted, or schema-stale entry
//!    files degrade to cache misses; no on-disk state panics a probe.

use duplexity::cellcache::{PayloadReader, PayloadWriter};
use duplexity::experiments::sweep::{cell_keys, SweepOptions};
use duplexity::{CellCache, CellKey, Design, Workload};
use duplexity_net::FaultPlan;
use duplexity_queueing::des::Mg1Options;
use proptest::prelude::*;

/// A one-cell sweep grid parameterized by every digested scalar the
/// perturbation test wants to wiggle.
fn one_cell_opts(
    seed: u64,
    load: f64,
    calibration_cycles: u64,
    max_samples: usize,
    warmup: usize,
    drop_prob: f64,
) -> SweepOptions {
    let mut fault = FaultPlan::none();
    fault.drop_prob = drop_prob;
    SweepOptions {
        workload: Workload::McRouter,
        designs: vec![Design::Baseline],
        loads: vec![load],
        calibration_cycles,
        seed,
        queue: Mg1Options {
            max_samples,
            warmup,
            ..Mg1Options::default()
        },
        fault,
        threads: 0,
        cache: None,
    }
}

fn decode(payload: &str) -> Option<(f64, u64)> {
    let mut r = PayloadReader::new(payload);
    let v = r.f64("v")?;
    let n = r.u64("n")?;
    r.done().then_some((v, n))
}

proptest! {
    /// Equal options, independently constructed, digest to equal keys.
    #[test]
    fn equal_options_digest_equally(
        seed in any::<u64>(),
        load in 0.05f64..0.95,
        cal in 100_000u64..5_000_000,
        ms in 1_000usize..100_000,
        wu in 0usize..5_000,
        dp in 0.0f64..0.5,
    ) {
        let a = one_cell_opts(seed, load, cal, ms, wu, dp);
        let b = one_cell_opts(seed, load, cal, ms, wu, dp);
        prop_assert_eq!(cell_keys(&a), cell_keys(&b));
    }

    /// Perturbing any single digested field produces a different key;
    /// perturbing the deliberately excluded fields does not.
    #[test]
    fn single_field_perturbations_change_the_key(
        seed in any::<u64>(),
        load in 0.05f64..0.9,
        cal in 100_000u64..5_000_000,
        ms in 1_000usize..100_000,
        wu in 0usize..5_000,
        dp in 0.0f64..0.4,
    ) {
        let base = one_cell_opts(seed, load, cal, ms, wu, dp);
        let base_key = cell_keys(&base).pop().expect("one cell");

        let perturbed: Vec<(&str, SweepOptions)> = vec![
            ("seed", one_cell_opts(seed.wrapping_add(1), load, cal, ms, wu, dp)),
            ("load", one_cell_opts(seed, load + 0.001, cal, ms, wu, dp)),
            ("calibration_cycles", one_cell_opts(seed, load, cal + 1, ms, wu, dp)),
            ("max_samples", one_cell_opts(seed, load, cal, ms + 1, wu, dp)),
            ("warmup", one_cell_opts(seed, load, cal, ms, wu + 1, dp)),
            ("drop_prob", one_cell_opts(seed, load, cal, ms, wu, dp + 0.001)),
            ("workload", {
                let mut o = one_cell_opts(seed, load, cal, ms, wu, dp);
                o.workload = Workload::Rsc;
                o
            }),
            ("design", {
                let mut o = one_cell_opts(seed, load, cal, ms, wu, dp);
                o.designs = vec![Design::Smt];
                o
            }),
        ];
        for (field, opts) in &perturbed {
            let k = cell_keys(opts).pop().expect("one cell");
            prop_assert_ne!(&k, &base_key, "perturbing {} did not change the key", field);
        }

        // Excluded inputs: worker count and the per-cell-overwritten seed
        // template must not reach the digest.
        let mut threads = base.clone();
        threads.threads = 7;
        prop_assert_eq!(cell_keys(&threads).pop().expect("one cell"), base_key.clone());
        let mut qseed = base.clone();
        qseed.queue.seed = qseed.queue.seed.wrapping_add(99);
        prop_assert_eq!(cell_keys(&qseed).pop().expect("one cell"), base_key);
    }

    /// Truncations and schema-version bumps miss; arbitrary single-bit
    /// corruption never panics a probe.
    #[test]
    fn corrupted_entries_degrade_to_misses_without_panicking(
        v_bits in any::<u64>(),
        n in any::<u64>(),
        case in any::<u64>(),
        cut_permille in 0u32..1000,
        flip_pos in any::<u64>(),
        flip_bit in 0u32..8,
    ) {
        // Arbitrary bit patterns cover every f64, NaNs and infinities
        // included — exactly the values JSON-based encodings mangle.
        let v = f64::from_bits(v_bits);
        let dir = std::env::temp_dir().join(format!(
            "duplexity-cellcache-prop-{}-{case:016x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CellCache::new(&dir);
        let key = CellKey::build("prop", |w| w.field_u64("case", case));
        let mut pw = PayloadWriter::new();
        pw.f64("v", v);
        pw.u64("n", n);
        cache.store(&key, &pw.finish());
        let path = dir.join(format!("{}.cell", key.hex()));
        let bytes = std::fs::read(&path).expect("stored entry exists");

        // Intact entry: bit-exact round-trip, NaNs included.
        let hit = CellCache::new(&dir).probe(std::slice::from_ref(&key), decode);
        prop_assert_eq!(
            hit[0].map(|(x, m)| (x.to_bits(), m)),
            Some((v.to_bits(), n))
        );

        // Strict truncation: always a miss, never a panic.
        let cut = (bytes.len() * cut_permille as usize / 1000).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).expect("truncate entry");
        prop_assert!(CellCache::new(&dir).probe(std::slice::from_ref(&key), decode)[0].is_none());

        // Arbitrary single-bit corruption: no panic; a hit, if any, still
        // decodes through the strict reader.
        let mut flipped = bytes.clone();
        let pos = (flip_pos % flipped.len() as u64) as usize;
        flipped[pos] ^= 1 << flip_bit;
        std::fs::write(&path, &flipped).expect("corrupt entry");
        let _ = CellCache::new(&dir).probe(std::slice::from_ref(&key), decode);

        // Schema-version bump: always a miss.
        let text = String::from_utf8(bytes).expect("entry is UTF-8");
        let stale = text.replacen("duplexity-cell v", "duplexity-cell v9", 1);
        std::fs::write(&path, stale).expect("stale entry");
        prop_assert!(CellCache::new(&dir).probe(std::slice::from_ref(&key), decode)[0].is_none());

        let _ = std::fs::remove_dir_all(&dir);
    }
}
