//! Differential tests for the shared event core: the calendar-queue timing
//! wheel against the `BinaryHeap` reference, from the raw queue contract up
//! through whole sweep grids.
//!
//! The `(t, kind, seq)` total-order contract (see
//! `duplexity_queueing::eventcore`) promises the two future-event sets pop
//! **identical** sequences for identical push sequences — not statistically
//! close, identical. That makes every level of this file a bitwise
//! assertion:
//!
//! 1. **Queue level** — proptest-generated schedules (continuous times,
//!    tie-prone discrete times, all event kinds, interleaved pops, random
//!    wheel geometries) popped through both queues in lockstep.
//! 2. **Engine level** — one duplication-aware cluster cell run on each
//!    queue, comparing every metric bit-for-bit *and* the emitted trace
//!    event-for-event (the observability ordering contract).
//! 3. **Grid level** — all nine design presets through `cluster_sweep` and
//!    the full default hedge-sweep plan matrix through `hedge_sweep`,
//!    wheel at 1 worker vs heap at 8 workers, so one comparison covers
//!    both the engine axis and the worker-count axis.
//! 4. **Edge cases** — zero-sample cells, the single-server degenerate
//!    against the M/G/1 reference simulator, a hedge deadline tied exactly
//!    with its request's departure (the kind-rank tie-break made visible),
//!    and purge-after-drain / hedge-after-completion bookkeeping.
//!
//! Plus the batched-RNG property: a `draw_batch` of `k` is bitwise the
//! `k` sequential draws it replaces (the golden-fixture contract behind
//! the batching optimization).

mod common;

use duplexity::experiments::cluster_sweep::{cluster_sweep, ClusterSweepOptions};
use duplexity::experiments::hedge_sweep::{hedge_sweep, HedgeSweepOptions};
use duplexity::{BalancerPolicy, Design};
use duplexity_obs::TraceLog;
use duplexity_obs::Tracer;
use duplexity_queueing::cluster::{
    try_simulate_cluster_hedged, ClusterEngine, ClusterOptions, DuplicationPolicy,
    HedgedClusterResult,
};
use duplexity_queueing::des::{try_simulate_mg1, Mg1Options};
use duplexity_queueing::eventcore::{EventQueue, EventQueueKind, HeapEventQueue, WheelEventQueue};
use duplexity_stats::dist::{Distribution, Exponential, Uniform};
use duplexity_stats::rng::{draw_batch, rng_from_seed, SimRng};
use proptest::prelude::*;
use rand::RngCore;

// ---------------------------------------------------------------------------
// 1. Queue-level differential: random schedules through both queues.
// ---------------------------------------------------------------------------

/// One step of a generated schedule.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    /// Push an event at this time with this kind rank.
    Push(f64, u8),
    /// Pop up to this many events.
    Pop(usize),
}

/// A tie-heavy mixed schedule: ~30% pops, ~35% pushes on a coarse discrete
/// time grid (forcing exact `t` collisions that only the kind/seq ranks
/// can order), ~35% continuous-time pushes, with kinds drawn from the
/// engine's full rank range.
fn random_schedule(rng: &mut SimRng, len: usize) -> Vec<QueueOp> {
    let cont = Uniform::new(0.0, 300.0);
    (0..len)
        .map(|_| match rng.next_u64() % 10 {
            0..=2 => QueueOp::Pop((rng.next_u64() % 4) as usize),
            3..=5 => QueueOp::Push(
                (rng.next_u64() % 12) as f64 * 25.0,
                (rng.next_u64() % 3) as u8,
            ),
            _ => QueueOp::Push(cont.sample(rng), (rng.next_u64() % 3) as u8),
        })
        .collect()
}

/// Runs `ops` through both queues in lockstep, asserting every pop agrees
/// on `(t, kind, seq)` and payload, then drains both to empty.
fn run_differential(mut wheel: WheelEventQueue<u32>, ops: &[QueueOp]) -> Result<(), TestCaseError> {
    let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
    let mut next_payload = 0u32;
    for (step, &op) in ops.iter().enumerate() {
        match op {
            QueueOp::Push(t, kind) => {
                heap.push(t, kind, next_payload);
                wheel.push(t, kind, next_payload);
                next_payload += 1;
            }
            QueueOp::Pop(n) => {
                for _ in 0..n {
                    let a = heap.pop();
                    let b = wheel.pop();
                    prop_assert_eq!(a, b, "step {}: heap vs wheel pop", step);
                }
            }
        }
        prop_assert_eq!(heap.len(), wheel.len(), "step {}: len", step);
    }
    loop {
        let a = heap.pop();
        let b = wheel.pop();
        prop_assert_eq!(a, b, "drain: heap vs wheel pop");
        if a.is_none() {
            break;
        }
    }
    prop_assert!(wheel.is_empty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Identical push sequences give identical pop sequences across every
    /// wheel geometry — wide and narrow buckets, tiny and large wheels —
    /// including schedules that pop below the wheel frontier and push
    /// "late" events behind it.
    #[test]
    fn wheel_pops_exactly_like_the_heap(
        seed in 0u64..100_000,
        len in 0usize..240,
        width_sel in 0usize..4,
        buckets_sel in 0usize..3,
    ) {
        let mut rng = rng_from_seed(seed ^ 0xD1FF);
        let ops = random_schedule(&mut rng, len);
        let width = [0.25, 2.0, 40.0, 1_000.0][width_sel];
        let nbuckets = [4usize, 64, 512][buckets_sel];
        run_differential(WheelEventQueue::with_geometry(width, nbuckets), &ops)?;
    }

    /// The auto-sized constructor (`for_rate`, the engine's path) obeys
    /// the same contract as every explicit geometry.
    #[test]
    fn auto_sized_wheel_pops_exactly_like_the_heap(
        seed in 0u64..100_000,
        len in 0usize..240,
        rate_sel in 0usize..3,
    ) {
        let mut rng = rng_from_seed(seed ^ 0x4A7E);
        let ops = random_schedule(&mut rng, len);
        let rate = [0.01, 1.0, 50.0][rate_sel];
        run_differential(WheelEventQueue::for_rate(rate), &ops)?;
    }
}

/// The rotation seam, pinned deterministically: an event at **exactly**
/// `frontier + horizon` (`width × nbuckets` past the frontier) is one full
/// rotation ahead — the first time that does *not* fit in the wheel. It
/// must take the overflow path at push time, migrate back as the frontier
/// crosses its slot, and pop in exactly the heap's order, including ties
/// at the boundary time that only the kind rank can break. Exercised twice
/// (once from the initial frontier, once after a rotation has advanced it)
/// so the boundary is relative to the *current* frontier, not slot zero.
#[test]
fn event_exactly_at_the_rotation_boundary_crosses_the_seam_like_the_heap() {
    // width 1.0 × 8 buckets → horizon 8.0. The schedule below pushes the
    // boundary events at t = 8.0 (frontier 0.0 + horizon) and, after the
    // pops have rotated the frontier to 8.0, at t = 16.0.
    let ops = [
        QueueOp::Push(0.0, 0),
        QueueOp::Push(3.0, 1),
        QueueOp::Push(7.5, 2),
        // Exactly frontier + horizon, three times, distinct kind ranks:
        // the seam tie-break.
        QueueOp::Push(8.0, 2),
        QueueOp::Push(8.0, 0),
        QueueOp::Push(8.0, 1),
        // Drain past the seam: the frontier rotates and the boundary
        // events migrate in.
        QueueOp::Pop(4),
        // The frontier now sits at 8.0; the next boundary is 16.0.
        QueueOp::Push(16.0, 0),
        QueueOp::Pop(3),
    ];
    run_differential(WheelEventQueue::with_geometry(1.0, 8), &ops)
        .expect("wheel and heap agree across the rotation boundary");

    // White-box confirmation that the schedule hit the path it claims to:
    // `frontier + horizon` is *exclusive*, so every boundary event above
    // overflowed at push time and migrated back before popping.
    let mut wheel: WheelEventQueue<u32> = WheelEventQueue::with_geometry(1.0, 8);
    wheel.push(8.0 - 1e-9, 0, 0);
    assert_eq!(
        wheel.profile().overflow_pushes,
        0,
        "just inside the horizon stays in the wheel"
    );
    wheel.push(8.0, 0, 1);
    assert_eq!(
        wheel.profile().overflow_pushes,
        1,
        "exactly frontier + horizon is the first overflowing time"
    );
    assert_eq!(wheel.pop().map(|(k, p)| (k.t, p)), Some((8.0 - 1e-9, 0)));
    assert_eq!(wheel.pop().map(|(k, p)| (k.t, p)), Some((8.0, 1)));
    assert!(wheel.is_empty());
    let prof = wheel.profile();
    assert_eq!(
        prof.overflow_migrations, 1,
        "the boundary event must migrate back into a bucket, not pop from overflow"
    );
}

// ---------------------------------------------------------------------------
// 2. Batched RNG draws: `draw_batch` is bitwise the sequential stream.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A `k`-draw batch consumes exactly the `k` sequential draws it
    /// replaces — same values bit-for-bit, same stream position after —
    /// so batching pilot/burst draws cannot move any golden fixture.
    #[test]
    fn batched_draws_are_bitwise_the_sequential_stream(
        seed in 0u64..1_000_000,
        k in 0usize..64,
        mean_sel in 0usize..3,
    ) {
        let mean = [0.5, 3.0, 40.0][mean_sel];
        let service = Exponential::new(mean);
        let mut batched = rng_from_seed(seed);
        let mut sequential = rng_from_seed(seed);
        let mut buf = Vec::new();
        draw_batch(&mut batched, k, &mut buf, |r| service.sample(r));
        prop_assert_eq!(buf.len(), k);
        for (i, &x) in buf.iter().enumerate() {
            let y = service.sample(&mut sequential);
            prop_assert_eq!(x.to_bits(), y.to_bits(), "draw {}", i);
        }
        // The streams stay aligned after the batch.
        prop_assert_eq!(batched.next_u64(), sequential.next_u64());
    }

    /// Reusing one buffer across batches neither leaks old draws nor
    /// perturbs the stream: two reused batches equal two fresh ones.
    #[test]
    fn batch_buffer_reuse_is_transparent(
        seed in 0u64..1_000_000,
        k1 in 0usize..48,
        k2 in 0usize..48,
    ) {
        let service = Exponential::new(2.0);
        let mut reused_rng = rng_from_seed(seed);
        let mut fresh_rng = rng_from_seed(seed);
        let mut reused = Vec::new();
        draw_batch(&mut reused_rng, k1, &mut reused, |r| service.sample(r));
        let first: Vec<u64> = reused.iter().map(|x| x.to_bits()).collect();
        draw_batch(&mut reused_rng, k2, &mut reused, |r| service.sample(r));
        let mut fresh = Vec::new();
        draw_batch(&mut fresh_rng, k1, &mut fresh, |r| service.sample(r));
        prop_assert_eq!(first, fresh.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        let mut fresh2 = Vec::new();
        draw_batch(&mut fresh_rng, k2, &mut fresh2, |r| service.sample(r));
        prop_assert_eq!(reused.len(), k2);
        for (i, (&a, &b)) in reused.iter().zip(&fresh2).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "second batch draw {}", i);
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Engine level: one cell, both queues, metrics and trace bit-identical.
// ---------------------------------------------------------------------------

/// Runs one duplication-aware cell on the given future-event set with a
/// capturing tracer.
fn run_cell(
    kind: EventQueueKind,
    plan: &DuplicationPolicy,
    policy: BalancerPolicy,
    servers: usize,
    lambda: f64,
    seed: u64,
    service: &mut dyn FnMut(&mut SimRng) -> f64,
) -> (HedgedClusterResult, TraceLog) {
    let opts = ClusterOptions {
        servers,
        max_samples: 8_000,
        warmup: 500,
        // Disable early stopping so both runs measure identical windows.
        max_relative_error: 0.001,
        seed,
        event_queue: kind,
        ..ClusterOptions::default()
    };
    let tracer = Tracer::enabled(1 << 17, 1_000.0);
    let mut balancer = policy.build();
    let r = try_simulate_cluster_hedged(lambda, service, balancer.as_mut(), plan, &opts, &tracer)
        .expect("stable differential cell");
    (r, tracer.take())
}

/// Bitwise equality of two hedged results: every float by bits, every
/// counter exactly, the trace event-for-event.
fn assert_cell_bitwise(
    a: &(HedgedClusterResult, TraceLog),
    b: &(HedgedClusterResult, TraceLog),
    what: &str,
) {
    let (ra, ta) = a;
    let (rb, tb) = b;
    assert_eq!(ra.cluster.samples, rb.cluster.samples, "{what}: samples");
    assert_eq!(
        ra.cluster.converged, rb.cluster.converged,
        "{what}: converged"
    );
    assert_eq!(
        ra.cluster.per_server_requests, rb.cluster.per_server_requests,
        "{what}: dispatch decisions"
    );
    for (field, x, y) in [
        ("p99", ra.cluster.tail_us, rb.cluster.tail_us),
        ("p50", ra.cluster.p50_us, rb.cluster.p50_us),
        (
            "mean",
            ra.cluster.mean_sojourn_us,
            rb.cluster.mean_sojourn_us,
        ),
        ("wait", ra.cluster.mean_wait_us, rb.cluster.mean_wait_us),
        ("util", ra.cluster.utilization, rb.cluster.utilization),
        ("measured", ra.cluster.measured_us, rb.cluster.measured_us),
        ("added_util", ra.added_utilization, rb.added_utilization),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {field} {x} vs {y}");
    }
    assert_eq!(ra.tally, rb.tally, "{what}: tally");
    assert_eq!(
        ra.dup_wait.count(),
        rb.dup_wait.count(),
        "{what}: dup waits"
    );
    assert_eq!(ta.events, tb.events, "{what}: trace events");
    assert_eq!(ta.dropped, tb.dropped, "{what}: trace drops");
    assert_eq!(ta.timeseries, tb.timeseries, "{what}: gauge series");
    // The registries agree on everything *simulated* — per-kind event
    // counters included — but the event-queue self-profile under
    // `cluster/eventq/` is deliberately engine-specific introspection
    // (the wheel reports bucket occupancy and fast-forward accounting
    // the heap cannot have), so it is compared only where the engines
    // share semantics: total pushes and pops.
    let profile = |k: &str| k.starts_with("cluster/eventq/");
    let shared = |t: &TraceLog| {
        t.registry
            .counters()
            .filter(|(k, _)| !profile(k))
            .map(|(k, v)| (k.to_string(), v))
            .collect::<Vec<_>>()
    };
    assert_eq!(shared(ta), shared(tb), "{what}: simulated counters");
    for total in ["cluster/eventq/pushes", "cluster/eventq/pops"] {
        assert_eq!(
            ta.registry.counter(total),
            tb.registry.counter(total),
            "{what}: {total}"
        );
    }
}

#[test]
fn wheel_and_heap_cells_are_bitwise_identical_traces_included() {
    let plans = [
        DuplicationPolicy::none(),
        DuplicationPolicy::duplicate(2),
        DuplicationPolicy::duplicate(2)
            .without_purge()
            .at_low_priority(),
        DuplicationPolicy::hedge(8.0),
    ];
    for (i, plan) in plans.iter().enumerate() {
        let seed = 0xE0C0 + i as u64;
        let mut svc_a = |rng: &mut SimRng| Exponential::new(2.0).sample(rng);
        let mut svc_b = |rng: &mut SimRng| Exponential::new(2.0).sample(rng);
        let heap = run_cell(
            EventQueueKind::Heap,
            plan,
            BalancerPolicy::Jsq,
            8,
            8.0 * 0.4 / 2.0,
            seed,
            &mut svc_a,
        );
        let wheel = run_cell(
            EventQueueKind::Wheel,
            plan,
            BalancerPolicy::Jsq,
            8,
            8.0 * 0.4 / 2.0,
            seed,
            &mut svc_b,
        );
        assert!(
            !wheel.1.events.is_empty() && wheel.1.dropped == 0,
            "trace must be captured in full for the comparison to mean anything"
        );
        assert_cell_bitwise(&heap, &wheel, &plan.label());
    }
}

// ---------------------------------------------------------------------------
// 4. Grid level: all nine presets and the full hedge plan matrix,
//    wheel @ 1 worker vs heap @ 8 workers.
// ---------------------------------------------------------------------------

#[test]
fn all_nine_design_presets_are_engine_and_worker_invariant() {
    let opts = |engine, threads| ClusterSweepOptions {
        designs: Design::ALL_WITH_EXTENSIONS.to_vec(),
        policies: vec![BalancerPolicy::Jsq],
        server_counts: vec![4],
        loads: vec![0.3, 0.6],
        calibration_cycles: 200_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 15_000,
            warmup: 500,
            ..Mg1Options::default()
        },
        engine,
        threads,
        ..ClusterSweepOptions::default()
    };
    let wheel = cluster_sweep(&opts(ClusterEngine::Event(EventQueueKind::Wheel), 1));
    let heap = cluster_sweep(&opts(ClusterEngine::Event(EventQueueKind::Heap), 8));
    assert_eq!(wheel.len(), 9 * 2);
    for p in &wheel {
        assert!(!p.saturated, "unexpected saturation at {p:?}");
    }
    common::assert_identical_artifacts("nine presets, wheel@1 vs heap@8", &wheel, &heap);
}

#[test]
fn full_hedge_sweep_grid_is_engine_and_worker_invariant() {
    // The default plan matrix (none, dup2, dup2_np, dup2_lp, hedge20,
    // hedge20_lp) over both default policies: every event species the
    // engine can schedule crosses both queues.
    let opts = |event_queue, threads| HedgeSweepOptions {
        server_counts: vec![2, 8],
        loads: vec![0.25, 0.4],
        seed: 42,
        queue: Mg1Options {
            max_samples: 15_000,
            warmup: 500,
            ..Mg1Options::default()
        },
        event_queue,
        threads,
        ..HedgeSweepOptions::default()
    };
    let wheel = hedge_sweep(&opts(EventQueueKind::Wheel, 1));
    let heap = hedge_sweep(&opts(EventQueueKind::Heap, 8));
    assert_eq!(wheel.len(), 2 * 6 * 2 * 2);
    common::assert_identical_artifacts("hedge grid, wheel@1 vs heap@8", &wheel, &heap);
}

// ---------------------------------------------------------------------------
// 5. Edge cases, each run through both queues.
// ---------------------------------------------------------------------------

/// A cell with a zero sample budget admits nothing: both queues agree on
/// the empty result instead of hanging or diverging.
#[test]
fn zero_sample_cells_agree_on_emptiness() {
    let results: Vec<HedgedClusterResult> = [EventQueueKind::Heap, EventQueueKind::Wheel]
        .into_iter()
        .map(|kind| {
            let opts = ClusterOptions {
                servers: 2,
                max_samples: 0,
                warmup: 0,
                seed: 7,
                event_queue: kind,
                ..ClusterOptions::default()
            };
            let mut svc = |rng: &mut SimRng| Exponential::new(2.0).sample(rng);
            let mut bal = BalancerPolicy::Jsq.build();
            try_simulate_cluster_hedged(
                0.3,
                &mut svc,
                bal.as_mut(),
                &DuplicationPolicy::none(),
                &opts,
                &Tracer::disabled(),
            )
            .expect("an empty cell is still stable")
        })
        .collect();
    for r in &results {
        assert_eq!(r.cluster.samples, 0);
        assert_eq!(r.tally.requests, 0);
    }
    assert_eq!(
        results[0].cluster.samples, results[1].cluster.samples,
        "heap vs wheel on the empty cell"
    );
    assert_eq!(
        results[0].cluster.mean_sojourn_us.to_bits(),
        results[1].cluster.mean_sojourn_us.to_bits()
    );
}

/// One server, no duplication: the hedged engine replays `simulate_mg1`'s
/// arrival/service stream (both start from `rng_from_seed(opts.seed)` and
/// draw in the same order), so with early stopping disabled the sample
/// counts match exactly and the metrics to floating-point association
/// error — on both queues.
#[test]
fn single_server_hedged_cell_degenerates_to_the_mg1_reference() {
    let mg1_opts = Mg1Options {
        max_samples: 30_000,
        warmup: 1_000,
        max_relative_error: 0.001,
        seed: 0x51E1,
        ..Mg1Options::default()
    };
    let lambda = 0.6 / 2.0;
    let mut svc = |rng: &mut SimRng| Exponential::new(2.0).sample(rng);
    let reference = try_simulate_mg1(lambda, &mut svc, &mg1_opts).expect("stable M/G/1");
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    for kind in [EventQueueKind::Heap, EventQueueKind::Wheel] {
        let mut copts = ClusterOptions::from_mg1(1, &mg1_opts);
        copts.event_queue = kind;
        let mut svc = |rng: &mut SimRng| Exponential::new(2.0).sample(rng);
        let mut bal = BalancerPolicy::Jsq.build();
        let hedged = try_simulate_cluster_hedged(
            lambda,
            &mut svc,
            bal.as_mut(),
            &DuplicationPolicy::none(),
            &copts,
            &Tracer::disabled(),
        )
        .expect("stable single-server cell");
        assert_eq!(reference.samples, hedged.cluster.samples, "{kind}: samples");
        assert!(
            close(reference.tail_us, hedged.cluster.tail_us),
            "{kind}: p99 {} vs {}",
            reference.tail_us,
            hedged.cluster.tail_us
        );
        assert!(
            close(reference.mean_sojourn_us, hedged.cluster.mean_sojourn_us),
            "{kind}: mean {} vs {}",
            reference.mean_sojourn_us,
            hedged.cluster.mean_sojourn_us
        );
        assert!(
            close(reference.utilization, hedged.cluster.utilization),
            "{kind}: util {} vs {}",
            reference.utilization,
            hedged.cluster.utilization
        );
    }
}

/// Deterministic 5µs service with a 5µs hedge deadline: a request that
/// starts immediately completes at *exactly* its deadline. The kind-rank
/// tie-break (`Arrive < HedgeFire < Depart`) says the hedge FIRES on that
/// tie — every measured request fires its hedge, none is cancelled — and
/// both queues resolve the tie the same way.
#[test]
fn hedge_deadline_tied_with_departure_fires_on_both_queues() {
    let results: Vec<HedgedClusterResult> = [EventQueueKind::Heap, EventQueueKind::Wheel]
        .into_iter()
        .map(|kind| {
            let opts = ClusterOptions {
                servers: 4,
                max_samples: 2_000,
                warmup: 100,
                max_relative_error: 0.001,
                seed: 0x71E5,
                event_queue: kind,
                ..ClusterOptions::default()
            };
            // Constant service: completion = start + 5.0 >= dispatch + 5.0
            // (the deadline), with equality whenever the copy starts
            // immediately — the tie is the common case, not a fluke.
            let mut svc = |_rng: &mut SimRng| 5.0;
            let mut bal = BalancerPolicy::Jsq.build();
            try_simulate_cluster_hedged(
                0.02,
                &mut svc,
                bal.as_mut(),
                &DuplicationPolicy::hedge(5.0),
                &opts,
                &Tracer::disabled(),
            )
            .expect("stable deterministic cell")
        })
        .collect();
    for r in &results {
        assert!(r.tally.requests > 0);
        assert_eq!(
            r.tally.hedges_fired, r.tally.requests,
            "a completion can never beat its own deadline, so every hedge fires"
        );
        assert_eq!(r.tally.hedges_cancelled, 0);
    }
    assert_eq!(results[0].tally, results[1].tally, "heap vs wheel tallies");
    assert_eq!(
        results[0].cluster.tail_us.to_bits(),
        results[1].cluster.tail_us.to_bits()
    );
}

/// The other side of the tie-break coin: service strictly shorter than the
/// deadline means every hedge is cancelled at its fire time (the request
/// is long gone), and a queued duplicate on a single server is purged
/// when its primary drains the queue — zero duplicate service delivered.
#[test]
fn late_hedges_cancel_and_queued_duplicates_purge_after_the_drain() {
    for kind in [EventQueueKind::Heap, EventQueueKind::Wheel] {
        let opts = |seed| ClusterOptions {
            servers: 1,
            max_samples: 2_000,
            warmup: 100,
            max_relative_error: 0.001,
            seed,
            event_queue: kind,
            ..ClusterOptions::default()
        };
        // Hedge far beyond a constant service time: every deadline finds
        // its request complete.
        let mut svc = |_rng: &mut SimRng| 2.0;
        let mut bal = BalancerPolicy::Jsq.build();
        let hedged = try_simulate_cluster_hedged(
            0.02,
            &mut svc,
            bal.as_mut(),
            &DuplicationPolicy::hedge(20.0),
            &opts(0xCA9C),
            &Tracer::disabled(),
        )
        .expect("stable");
        assert!(hedged.tally.requests > 0, "{kind}");
        assert_eq!(hedged.tally.hedges_fired, 0, "{kind}");
        assert_eq!(
            hedged.tally.hedges_cancelled, hedged.tally.requests,
            "{kind}: every hedge must find its request already complete"
        );
        // Eager duplicate on the lone server: the copy queues behind its
        // own primary and is purged still-queued when the primary
        // completes — the queue has just drained, and the purge must not
        // double-free or start the ghost copy.
        let mut svc = |_rng: &mut SimRng| 2.0;
        let mut bal = BalancerPolicy::Jsq.build();
        let dup = try_simulate_cluster_hedged(
            0.02,
            &mut svc,
            bal.as_mut(),
            &DuplicationPolicy::duplicate(2),
            &opts(0xD4A1),
            &Tracer::disabled(),
        )
        .expect("stable");
        assert!(dup.tally.requests > 0, "{kind}");
        assert_eq!(
            dup.tally.purged_queued, dup.tally.dup_copies,
            "{kind}: every duplicate dies in the queue"
        );
        assert_eq!(dup.tally.wasted_completions, 0, "{kind}");
        assert_eq!(
            dup.tally.dup_delivered_us.to_bits(),
            0.0f64.to_bits(),
            "{kind}: purged-in-queue copies deliver zero service"
        );
    }
}
