//! The cluster-scale DES contract, end to end.
//!
//! Three guarantees (see `crates/queueing/src/cluster.rs` and the
//! `cluster_sweep` driver):
//!
//! 1. **Worker-count independence** — the cluster sweep grid is
//!    bit-identical at 1 and 8 `ExecPool` workers (index-addressed slots,
//!    per-cell derived seeds).
//! 2. **Policy ordering** — with common random numbers, JSQ's p99 never
//!    exceeds Random's at any (design, size, load) cell.
//! 3. **Queueing-theory fidelity** — a least-work cluster over exponential
//!    service is exactly an M/M/k queue, so its mean wait must match the
//!    Erlang-C formula within a replication-level confidence interval.
//!
//! Seeds are fixed, so these tests are deterministic: they either always
//! pass or flag a real modeling drift.

mod common;

use duplexity::experiments::cluster_sweep::{cluster_sweep, ClusterSweepOptions};
use duplexity::{BalancerPolicy, Design};
use duplexity_obs::Tracer;
use duplexity_queueing::cluster::{try_simulate_cluster, ClusterOptions, LeastWorkBalancer};
use duplexity_queueing::des::Mg1Options;
use duplexity_queueing::mmk::MmkAnalytic;
use duplexity_stats::ci::mean_ci;
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::rng::derive_stream;
use duplexity_stats::summary::Summary;

fn sweep_opts(threads: usize) -> ClusterSweepOptions {
    ClusterSweepOptions {
        designs: vec![Design::Baseline, Design::Duplexity],
        policies: vec![
            BalancerPolicy::Random,
            BalancerPolicy::PowerOfD(2),
            BalancerPolicy::Jsq,
        ],
        server_counts: vec![2, 8],
        loads: vec![0.4, 0.7],
        calibration_cycles: 500_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 40_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        ..ClusterSweepOptions::default()
    }
}

#[test]
fn cluster_sweep_grid_is_bit_identical_at_1_and_8_workers() {
    let one = cluster_sweep(&sweep_opts(1));
    let eight = cluster_sweep(&sweep_opts(8));
    assert_eq!(one.len(), eight.len());
    assert_eq!(one.len(), 2 * 3 * 2 * 2);
    // Bitwise equality, not tolerance: the determinism contract.
    common::assert_identical_artifacts("cluster_sweep 1 vs 8 workers", &one, &eight);
}

#[test]
fn replicated_cluster_sweep_is_bit_identical_at_1_and_8_workers() {
    // Within-cell parallel replications flatten into the pool's work list;
    // the merge is in replication order, so the grid must stay
    // bit-identical at every worker count even when a single cell's
    // replications land on different workers.
    let replicated = |threads| ClusterSweepOptions {
        replications: 4,
        ..sweep_opts(threads)
    };
    let one = cluster_sweep(&replicated(1));
    let eight = cluster_sweep(&replicated(8));
    assert_eq!(one.len(), 2 * 3 * 2 * 2);
    for p in &one {
        assert!(!p.saturated && p.samples > 0, "unexpected empty cell {p:?}");
    }
    common::assert_identical_artifacts("replicated cluster_sweep 1 vs 8 workers", &one, &eight);
}

#[test]
fn jsq_never_loses_to_random_anywhere_on_the_grid() {
    let points = cluster_sweep(&sweep_opts(0));
    for p in &points {
        assert!(!p.saturated, "unexpected saturation at {p:?}");
    }
    for jsq in points.iter().filter(|p| p.policy == "jsq") {
        let random = points
            .iter()
            .find(|p| {
                p.policy == "random"
                    && p.design == jsq.design
                    && p.servers == jsq.servers
                    && p.load == jsq.load
            })
            .expect("paired random cell");
        assert!(
            jsq.p99_us <= random.p99_us,
            "{:?} {}s @{}: jsq p99 {} vs random {}",
            jsq.design,
            jsq.servers,
            jsq.load,
            jsq.p99_us,
            random.p99_us
        );
    }
}

#[test]
fn least_work_cluster_mean_wait_matches_erlang_c() {
    // A least-work balancer over FCFS servers is exactly a central-queue
    // M/M/k when service is exponential: every request starts as early as
    // possible. Cross-check the simulated mean wait against the Erlang-C
    // formula over independent replications (the CI over replication means
    // is statistically sound where one run's autocorrelated samples are
    // not), with a 2% allowance for the initial-transient bias of runs
    // that start with an empty farm.
    for (servers, load) in [(2, 0.7), (4, 0.8)] {
        let mean_service = 2.0;
        let lambda = servers as f64 * load / mean_service;
        let analytic = MmkAnalytic {
            lambda_per_us: lambda,
            mean_service_us: mean_service,
            servers,
        }
        .mean_wait_us();

        let mut waits = Summary::new();
        for rep in 0..8u64 {
            let opts = ClusterOptions {
                servers,
                max_samples: 150_000,
                warmup: 5_000,
                // Disable early stopping: full-length replications shrink
                // both the variance and the initial-transient bias.
                max_relative_error: 0.001,
                seed: derive_stream(0xE71A, rep),
                ..ClusterOptions::default()
            };
            let mut svc = |rng: &mut _| Exponential::new(mean_service).sample(rng);
            let r = try_simulate_cluster(
                lambda,
                &mut svc,
                &mut LeastWorkBalancer,
                &opts,
                &Tracer::disabled(),
            )
            .expect("stable M/M/k configuration");
            waits.record(r.mean_wait_us);
        }
        let ci = mean_ci(&waits, 0.95);
        let bias = 0.02 * analytic;
        assert!(
            analytic >= ci.low - bias && analytic <= ci.high + bias,
            "M/M/{servers} @{load}: CI [{}, {}] (+/- {bias:.4} bias) misses Erlang-C {analytic}",
            ci.low,
            ci.high
        );
    }
}
