//! Shared fixtures and comparison helpers for the integration-test suite.
//!
//! Every golden-regression target (`tests/golden.rs`,
//! `tests/hedge_determinism.rs`, …) compares a regenerated artifact byte
//! for byte against a checked-in JSON fixture under `tests/golden/`, and
//! every determinism target compares two runs of the same grid bitwise.
//! Both comparisons live here so a failure names the **first mismatching
//! cell and field** (e.g. `[12].p99_us`) instead of dumping two
//! multi-kilobyte JSON strings.
//!
//! Since the workspace JSON writer emits shortest-round-trip floats
//! (including a distinct `-0`), byte equality of two serialized artifacts
//! is exactly bit equality of every finite float in them.

// Each test target compiles this module independently and uses a subset.
#![allow(dead_code)]

use serde::Serialize;
use serde_json::{parse_value, Value};
use std::path::PathBuf;

/// The checked-in fixture directory, `tests/golden/` at the workspace root.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Serializes `value` with the workspace's deterministic pretty writer
/// (trailing newline included, matching the on-disk fixtures).
pub fn pretty_json<T: Serialize>(value: &T) -> String {
    let mut s = serde_json::to_string_pretty(value).expect("serialize artifact");
    s.push('\n');
    s
}

/// Walks two JSON values in lockstep and describes the first diverging
/// path, e.g. `[12].p99_us: 31.5 vs 31.25`. Returns `None` when equal.
pub fn first_mismatch(a: &Value, b: &Value) -> Option<String> {
    fn walk(a: &Value, b: &Value, path: &str) -> Option<String> {
        if a == b {
            return None;
        }
        match (a, b) {
            (Value::Array(xs), Value::Array(ys)) => {
                if xs.len() != ys.len() {
                    return Some(format!("{path}: array length {} vs {}", xs.len(), ys.len()));
                }
                xs.iter()
                    .zip(ys)
                    .enumerate()
                    .find_map(|(i, (x, y))| walk(x, y, &format!("{path}[{i}]")))
            }
            (Value::Object(xs), Value::Object(ys)) => {
                if xs.len() != ys.len() || xs.iter().zip(ys).any(|((ka, _), (kb, _))| ka != kb) {
                    return Some(format!(
                        "{path}: field sets differ ({:?} vs {:?})",
                        xs.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
                        ys.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>()
                    ));
                }
                xs.iter()
                    .zip(ys)
                    .find_map(|((k, x), (_, y))| walk(x, y, &format!("{path}.{k}")))
            }
            _ => Some(format!("{path}: {a:?} vs {b:?}")),
        }
    }
    walk(a, b, "")
}

/// Describes where two serialized artifacts first diverge, preferring the
/// structural cell/field path and falling back to the first differing
/// byte offset for non-JSON drift (e.g. whitespace).
fn describe_drift(actual: &str, expected: &str) -> String {
    if let (Ok(a), Ok(b)) = (parse_value(actual), parse_value(expected)) {
        if let Some(m) = first_mismatch(&a, &b) {
            return format!("first mismatch at {m}");
        }
    }
    let at = actual
        .bytes()
        .zip(expected.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| actual.len().min(expected.len()));
    format!(
        "texts diverge at byte {at} (lengths {} vs {})",
        actual.len(),
        expected.len()
    )
}

/// Compares `value`'s pretty JSON against `tests/golden/<name>.json`, or
/// rewrites the fixture when `UPDATE_GOLDEN=1` is set. `test_target` is the
/// `cargo test --test <target>` that owns the fixture, quoted in the
/// regeneration hint.
pub fn assert_matches_golden<T: Serialize>(test_target: &str, name: &str, value: &T) {
    let path = golden_dir().join(format!("{name}.json"));
    let actual = pretty_json(value);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &actual).expect("write golden fixture");
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test {test_target}` to create it",
            path.display()
        )
    });
    assert!(
        actual == expected,
        "{name} drifted from its golden fixture ({}); if the change is \
         intentional, regenerate with `UPDATE_GOLDEN=1 cargo test --test \
         {test_target}` and review `git diff tests/golden/`",
        describe_drift(&actual, &expected)
    );
}

/// Asserts two runs of the same artifact are **bit-identical**, naming the
/// first mismatching cell/field. Shortest-round-trip serialization makes
/// byte equality of the JSON exactly bit equality of every finite float.
pub fn assert_identical_artifacts<T: Serialize>(label: &str, a: &T, b: &T) {
    let ja = pretty_json(a);
    let jb = pretty_json(b);
    assert!(
        ja == jb,
        "{label}: artifacts are not bit-identical ({})",
        describe_drift(&ja, &jb)
    );
}
