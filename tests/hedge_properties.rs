//! Property-based tests for the duplication/hedging engine's identities.
//!
//! The tail-cutting plans are decorators over the balanced cluster DES, and
//! three exact identities pin down their seams:
//!
//! 1. **Degenerate hedges are eager duplicates** — `Hedge { deadline: 0 }`
//!    launches its duplicate in the arrival instant on the identical code
//!    path as `Duplicate { copies: 2 }`, so the two plans must agree
//!    event for event (bitwise metrics *and* bookkeeping).
//! 2. **Inert plans are invisible** — `Hedge { deadline: ∞ }` never fires
//!    and `Duplicate { copies: 1 }` launches no extras; both must be
//!    bitwise no-ops over [`DuplicationPolicy::none`], including the
//!    number of service-distribution draws (the duplicate RNG stream must
//!    stay untouched).
//! 3. **Power-of-n is JSQ** — sampling all `n` servers without replacement
//!    degenerates to join-shortest-queue on every sample path.
//!
//! Alongside the identities, conservation invariants over random loads,
//! seeds, and plans: every admitted request completes exactly once, purged
//! copies never complete, and purging strictly reduces the duplicate work
//! delivered relative to eager no-purge duplication.

use duplexity_obs::Tracer;
use duplexity_queueing::cluster::{
    try_simulate_cluster_hedged, BalancerPolicy, ClusterOptions, DuplicationPolicy,
    HedgedClusterResult,
};
use duplexity_stats::dist::{Distribution, Exponential};
use duplexity_stats::rng::SimRng;
use proptest::prelude::*;

const MEAN_SERVICE_US: f64 = 1.0;
const SERVERS: usize = 4;

/// Runs one small hedged-cluster simulation, returning the result and the
/// number of service-distribution draws it consumed.
fn run(
    plan: &DuplicationPolicy,
    policy: BalancerPolicy,
    load: f64,
    seed: u64,
) -> (HedgedClusterResult, u64) {
    let lambda = SERVERS as f64 * load / MEAN_SERVICE_US;
    let mut draws = 0u64;
    let mut service = |rng: &mut SimRng| {
        draws += 1;
        Exponential::new(MEAN_SERVICE_US).sample(rng)
    };
    let opts = ClusterOptions {
        servers: SERVERS,
        max_samples: 4_000,
        warmup: 200,
        seed,
        ..ClusterOptions::default()
    };
    let mut balancer = policy.build();
    let r = try_simulate_cluster_hedged(
        lambda,
        &mut service,
        balancer.as_mut(),
        plan,
        &opts,
        &Tracer::disabled(),
    )
    .expect("stable configuration");
    (r, draws)
}

/// Asserts two hedged runs agree bitwise: metrics, per-server placement,
/// and every duplication counter.
fn assert_bitwise_equal(a: &HedgedClusterResult, b: &HedgedClusterResult, what: &str) {
    assert_eq!(
        a.cluster.tail_us.to_bits(),
        b.cluster.tail_us.to_bits(),
        "{what}: tail"
    );
    assert_eq!(
        a.cluster.p50_us.to_bits(),
        b.cluster.p50_us.to_bits(),
        "{what}: p50"
    );
    assert_eq!(
        a.cluster.mean_sojourn_us.to_bits(),
        b.cluster.mean_sojourn_us.to_bits(),
        "{what}: mean sojourn"
    );
    assert_eq!(
        a.cluster.mean_wait_us.to_bits(),
        b.cluster.mean_wait_us.to_bits(),
        "{what}: mean wait"
    );
    assert_eq!(
        a.cluster.utilization.to_bits(),
        b.cluster.utilization.to_bits(),
        "{what}: utilization"
    );
    assert_eq!(
        a.cluster.per_server_requests, b.cluster.per_server_requests,
        "{what}: placement"
    );
    assert_eq!(a.cluster.samples, b.cluster.samples, "{what}: samples");
    assert_eq!(
        a.cluster.converged, b.cluster.converged,
        "{what}: converged"
    );
    assert_eq!(a.tally, b.tally, "{what}: tally");
    assert_eq!(a.dup_wait.count(), b.dup_wait.count(), "{what}: dup waits");
    assert_eq!(
        a.added_utilization.to_bits(),
        b.added_utilization.to_bits(),
        "{what}: added utilization"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `Hedge { deadline: 0 }` is event-for-event eager `Duplicate { 2 }`.
    #[test]
    fn zero_deadline_hedge_is_eager_duplication(seed in 0u64..1_000, load in 0.1f64..0.7) {
        let (hedge, hedge_draws) = run(&DuplicationPolicy::hedge(0.0), BalancerPolicy::Jsq, load, seed);
        let (dup, dup_draws) = run(&DuplicationPolicy::duplicate(2), BalancerPolicy::Jsq, load, seed);
        assert_bitwise_equal(&hedge, &dup, "hedge0 vs dup2");
        prop_assert_eq!(hedge_draws, dup_draws);
        // The identity maps hedge bookkeeping onto eager bookkeeping.
        prop_assert_eq!(hedge.tally.hedges_fired, 0);
        prop_assert!(dup.tally.dup_copies > 0);
    }

    /// `Hedge { deadline: ∞ }` and `Duplicate { copies: 1 }` are bitwise
    /// no-ops over the undecorated plan — same metrics, same number of
    /// service draws (nothing ever touches the duplicate RNG stream).
    #[test]
    fn inert_plans_are_bitwise_noops(seed in 0u64..1_000, load in 0.1f64..0.8) {
        let (base, base_draws) = run(&DuplicationPolicy::none(), BalancerPolicy::Jsq, load, seed);
        for plan in [DuplicationPolicy::hedge(f64::INFINITY), DuplicationPolicy::duplicate(1)] {
            let (decorated, draws) = run(&plan, BalancerPolicy::Jsq, load, seed);
            assert_bitwise_equal(&base, &decorated, &plan.label());
            prop_assert_eq!(draws, base_draws, "{} must not draw extra demands", plan.label());
            prop_assert_eq!(decorated.tally.dup_copies, 0);
            prop_assert_eq!(decorated.added_utilization, 0.0);
        }
    }

    /// Power-of-d with `d = n` probes every server without replacement and
    /// must match JSQ on every sample path, duplicates included.
    #[test]
    fn power_of_n_is_jsq_under_duplication(seed in 0u64..1_000, load in 0.1f64..0.6) {
        let plan = DuplicationPolicy::duplicate(2);
        let (jsq, _) = run(&plan, BalancerPolicy::Jsq, load, seed);
        let (pod, _) = run(&plan, BalancerPolicy::PowerOfD(SERVERS), load, seed);
        assert_bitwise_equal(&jsq, &pod, "jsq vs power_of_n");
    }

    /// Conservation over random loads, seeds, and plans: every admitted
    /// request completes exactly once; every issued copy reaches exactly
    /// one terminal state (completed or purged); purge makes redundant
    /// completions impossible.
    #[test]
    fn copies_are_conserved(seed in 0u64..1_000, load in 0.1f64..0.45, which in 0usize..6) {
        let plans = [
            DuplicationPolicy::none(),
            DuplicationPolicy::duplicate(2),
            DuplicationPolicy::duplicate(2).without_purge(),
            DuplicationPolicy::duplicate(2).at_low_priority(),
            DuplicationPolicy::hedge(2.0),
            DuplicationPolicy::hedge(2.0).at_low_priority(),
        ];
        let plan = plans[which];
        let (r, _) = run(&plan, BalancerPolicy::Jsq, load, seed);
        let t = &r.tally;
        prop_assert_eq!(t.requests, r.cluster.samples as u64);
        // Exactly-once completion: redundant completions are the only
        // copies that finish beyond the first per request.
        prop_assert_eq!(t.completions - t.wasted_completions, t.requests);
        // Terminal-state conservation for every issued copy.
        prop_assert_eq!(
            t.completions + t.purged_queued + t.purged_in_service,
            t.copies_issued
        );
        prop_assert!(t.completions <= t.copies_issued);
        prop_assert_eq!(t.copies_issued - t.dup_copies, t.requests);
        prop_assert!(t.hedges_fired + t.hedges_cancelled <= t.requests);
        if plan.purge {
            prop_assert_eq!(t.wasted_completions, 0);
        }
        if let duplexity_queueing::cluster::DupMode::None = plan.mode {
            prop_assert_eq!(t.dup_copies, 0);
            prop_assert_eq!(r.added_utilization, 0.0);
        }
        prop_assert!(r.added_utilization >= 0.0);
    }

    /// Purging strictly reduces the duplicate work delivered relative to
    /// running every eager copy to completion.
    #[test]
    fn purge_delivers_strictly_less_duplicate_work(seed in 0u64..1_000, load in 0.15f64..0.45) {
        let (purged, _) = run(&DuplicationPolicy::duplicate(2), BalancerPolicy::Jsq, load, seed);
        let (eager, _) = run(
            &DuplicationPolicy::duplicate(2).without_purge(),
            BalancerPolicy::Jsq,
            load,
            seed,
        );
        prop_assert!(purged.tally.dup_delivered_us < eager.tally.dup_delivered_us);
        prop_assert!(purged.added_utilization < eager.added_utilization);
        prop_assert_eq!(eager.tally.purged_queued + eager.tally.purged_in_service, 0);
    }
}
