//! Cross-crate integration tests: the full pipeline from workload kernels
//! through the cycle simulator, queueing simulator, and power model.

use duplexity::experiments::fig5::{run_fig5, Fig5Options};
use duplexity::experiments::{fig1, fig2, fig6, tables};
use duplexity::{Design, ServerSim, Workload};
use duplexity_queueing::des::Mg1Options;

fn small_fig5(workload: Workload, designs: Vec<Design>) -> Fig5Options {
    Fig5Options {
        loads: vec![0.5],
        workloads: vec![workload],
        designs,
        horizon_cycles: 1_000_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 100_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        ..Fig5Options::default()
    }
}

/// The headline claim, end to end: Duplexity multiplies master-core
/// utilization over both baseline and SMT while keeping the iso-throughput
/// tail below the baseline's.
#[test]
fn headline_utilization_and_tail() {
    let opts = small_fig5(
        Workload::McRouter,
        vec![Design::Baseline, Design::Smt, Design::Duplexity],
    );
    let cells = run_fig5(&opts);
    let get = |d: Design| cells.iter().find(|c| c.design == d).expect("cell");
    let base = get(Design::Baseline);
    let smt = get(Design::Smt);
    let dup = get(Design::Duplexity);

    assert!(
        dup.utilization > 2.0 * base.utilization,
        "vs baseline: {dup:?}"
    );
    assert!(dup.utilization > 1.2 * smt.utilization, "vs SMT: {dup:?}");
    assert!(dup.iso_p99_norm < 1.0);
    assert!(dup.perf_density_norm > smt.perf_density_norm);
}

/// Every microservice runs on every design without panicking, making
/// progress and completing requests.
#[test]
fn full_design_workload_matrix_executes() {
    for workload in Workload::ALL {
        for design in [
            Design::Baseline,
            Design::SmtPlus,
            Design::MorphCore,
            Design::Duplexity,
        ] {
            let m = ServerSim::new(design, workload)
                .load(0.5)
                .horizon_cycles(600_000)
                .seed(1)
                .run();
            assert!(m.master_retired > 0, "{design}/{workload}: no progress");
            assert!(
                !m.request_latencies_us.is_empty(),
                "{design}/{workload}: no completed requests"
            );
        }
    }
}

/// WordStem (stall-free) only morphs on idleness and issues no remote ops
/// from the master-thread.
#[test]
fn wordstem_is_idleness_only() {
    let m = ServerSim::new(Design::Duplexity, Workload::WordStem)
        .load(0.3)
        .horizon_cycles(1_500_000)
        .seed(2)
        .run();
    assert_eq!(m.remote_ops_master, 0);
    assert!(m.morphs > 0, "idle periods must still trigger morphs");
    assert!(m.colocated_retired > 0);
}

/// The motivation chain: Figure 1 artifacts agree with their analytic
/// anchors.
#[test]
fn motivation_figures_are_consistent() {
    // 1(a): equal-order compute/stall wastes half the machine.
    let cells = fig1::fig1a(2);
    let mid = cells
        .iter()
        .find(|c| (c.stall_us - 1.0).abs() < 0.01 && (c.compute_us - 1.0).abs() < 0.01)
        .expect("unit cell");
    assert!((mid.utilization - 0.5).abs() < 1e-9);

    // 1(b): a 1M QPS service at 50% load has 2µs mean idle periods.
    let series = fig1::fig1b(100);
    assert_eq!(series.len(), 6);

    // 2(b): the paper's provisioning anchors.
    let f2b = fig2::fig2b(32);
    let p21 = f2b
        .iter()
        .find(|p| p.stall_p == 0.5 && p.n == 21)
        .expect("point");
    assert!(p21.p_ready >= 0.9);
}

/// Figure 6 derives from Figure 5 and stays within the FDR budget.
#[test]
fn nic_utilization_within_budget() {
    let opts = small_fig5(Workload::FlannLl, vec![Design::Baseline, Design::Duplexity]);
    let cells = run_fig5(&opts);
    let f6 = fig6::fig6(&cells);
    for c in &f6 {
        assert!(
            c.nic_utilization < 0.2,
            "{:?} exceeds plausible NIC share",
            c
        );
    }
    assert!(fig6::dyads_per_port(&f6) >= 5);
}

/// Tables render and the area model matches the paper.
#[test]
fn tables_match_paper() {
    assert_eq!(tables::table1_lines().len(), 8);
    for row in tables::table2_rows() {
        assert!((row.area_mm2 - row.paper_area_mm2).abs() / row.paper_area_mm2 < 0.01);
    }
}

/// Determinism across the whole stack: same seed, same Figure 5 numbers.
#[test]
fn fig5_is_deterministic() {
    let opts = small_fig5(Workload::FlannLl, vec![Design::Baseline, Design::Duplexity]);
    let a = run_fig5(&opts);
    let b = run_fig5(&opts);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.utilization, y.utilization);
        assert_eq!(x.p99_us, y.p99_us);
        assert_eq!(x.stp_norm, y.stp_norm);
    }
}

/// Cross-granularity validation: the cycle-level simulator's request
/// latencies at 50% load agree with the Pollaczek–Khinchine prediction fed
/// by its own measured (saturated) service-time distribution. This ties the
/// two simulation granularities of the paper's methodology together.
#[test]
fn cycle_sim_queueing_matches_mg1_analytic() {
    use duplexity_queueing::mg1::Mg1Analytic;
    use duplexity_stats::summary::Summary;

    // 1) Measure the service distribution under saturation (no queueing).
    let sat = ServerSim::new(Design::Baseline, Workload::WordStem)
        .saturated()
        .horizon_cycles(3_000_000)
        .seed(11)
        .run();
    let service: Summary = sat.request_latencies_us.iter().copied().collect();
    assert!(
        service.count() > 200,
        "need service samples, got {}",
        service.count()
    );

    // 2) Open-loop at 50% of nominal capacity. The arrival rate in the cycle
    //    sim is load / nominal_service_us, so use the same lambda here.
    let loaded = ServerSim::new(Design::Baseline, Workload::WordStem)
        .load(0.5)
        .horizon_cycles(20_000_000)
        .seed(11)
        .run();
    let measured: Summary = loaded.request_latencies_us.iter().copied().collect();
    assert!(
        measured.count() > 300,
        "need latency samples, got {}",
        measured.count()
    );

    // 3) Analytic M/G/1 with the measured first two service moments.
    let analytic = Mg1Analytic {
        lambda_per_us: 0.5 / Workload::WordStem.nominal_service_us(),
        mean_service_us: service.mean(),
        service_scv: service.scv(),
    };
    let predicted = analytic.mean_sojourn_us();
    let observed = measured.mean();
    assert!(
        (observed - predicted).abs() / predicted < 0.25,
        "cycle-sim mean sojourn {observed:.2}µs vs M/G/1 {predicted:.2}µs"
    );
}

/// Slow, opt-in validation (`cargo test --release -- --ignored`): the cycle
/// simulator's own p95 latency at 50% load agrees with the queueing
/// simulator fed by the measured service distribution — the full two-level
/// methodology validated at the tail, not just the mean.
#[test]
#[ignore = "takes ~30s; run with --ignored"]
fn slow_cycle_vs_queueing_tail() {
    use duplexity_queueing::des::{simulate_mg1, Mg1Options};
    use duplexity_stats::quantile::QuantileEstimator;
    use duplexity_stats::rng::SimRng;

    // Service distribution from saturation.
    let sat = ServerSim::new(Design::Baseline, Workload::WordStem)
        .saturated()
        .horizon_cycles(8_000_000)
        .seed(21)
        .run();
    let services: Vec<f64> = sat.request_latencies_us.clone();
    assert!(services.len() > 500);

    // Long open-loop run for a stable cycle-level p95.
    let loaded = ServerSim::new(Design::Baseline, Workload::WordStem)
        .load(0.5)
        .horizon_cycles(120_000_000)
        .seed(21)
        .run();
    let mut q: QuantileEstimator = loaded.request_latencies_us.iter().copied().collect();
    assert!(q.count() > 2_000, "samples {}", q.count());
    let cycle_p95 = q.quantile(0.95).unwrap();

    // Queueing simulation resampling the measured services.
    let mut idx = 0usize;
    let mut service = |_rng: &mut SimRng| {
        let s = services[idx % services.len()];
        idx += 1;
        s
    };
    let lambda = 0.5 / Workload::WordStem.nominal_service_us();
    let r = simulate_mg1(
        lambda,
        &mut service,
        &Mg1Options {
            quantile: 0.95,
            max_samples: 400_000,
            ..Mg1Options::default()
        },
    );
    assert!(
        (cycle_p95 - r.tail_us).abs() / r.tail_us < 0.25,
        "cycle p95 {cycle_p95:.2}µs vs queueing p95 {:.2}µs",
        r.tail_us
    );
}

/// Trace replay end to end: latencies harvested from a real workload's
/// micro-op trace feed a `LatencyDist::Trace` event source, so fault-sweep
/// studies can bootstrap from measured stall behavior instead of a fitted
/// law.
#[test]
fn harvested_trace_latencies_drive_a_fault_source() {
    use duplexity::{EventSource, FaultPlan, LatencyDist};
    use duplexity_stats::rng::rng_from_seed;
    use duplexity_workloads::trace::remote_latencies_us;

    // Harvest the RDMA stall latencies from a FLANN-LL request trace.
    let mut kernel = Workload::FlannLl.kernel(11);
    let mut ops = Vec::new();
    let mut rng = rng_from_seed(11);
    for _ in 0..50 {
        kernel.generate(&mut rng, &mut ops);
    }
    let samples = remote_latencies_us(&ops);
    assert!(!samples.is_empty(), "FLANN-LL must issue remote loads");

    // Replay them through a fault-injected event source.
    let dist = LatencyDist::from_trace(samples.clone());
    assert!(dist.mean_us() > 0.0);
    let plan = FaultPlan::none().with_slow_replica(0.5, 3.0);
    let mut source = EventSource::new(duplexity::EventKind::RemoteMemory, dist, plan, 99);
    let mut slowed = 0u64;
    for _ in 0..500 {
        let ev = source.next_event();
        assert!(ev.completed);
        // Every latency is a harvested sample or a 3x-degraded one.
        let ok = samples
            .iter()
            .any(|&s| (ev.latency_us - s).abs() < 1e-12 || (ev.latency_us - 3.0 * s).abs() < 1e-9);
        assert!(ok, "latency {} not from the trace", ev.latency_us);
        slowed += u64::from(ev.slowed_legs > 0);
    }
    let stats = source.stats();
    assert_eq!(stats.events, 500);
    assert!(slowed > 150 && slowed < 350, "slow replicas ~50%: {slowed}");
}
