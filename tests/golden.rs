//! Golden regression tests: every figure artifact is snapshotted as JSON.
//!
//! Each test regenerates a small fixed-seed artifact, serializes it with the
//! workspace's deterministic JSON writer (insertion-ordered fields,
//! shortest-round-trip floats), and compares it **byte for byte** against a
//! checked-in fixture under `tests/golden/`. Any change to the simulators,
//! the RNG derivation, or the normalization arithmetic shows up as a diff.
//!
//! To regenerate the fixtures after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! git diff tests/golden/   # review the numeric drift, then commit
//! ```
//!
//! Grids are chosen so no cell saturates (`p99` stays finite): the JSON
//! encoding maps non-finite floats to `null`, which would not round-trip
//! back into an `f64` field.

mod common;

use duplexity::experiments::fault_sweep::{fault_sweep, FaultSweepOptions, FaultSweepPoint};
use duplexity::experiments::fig5::{run_fig5, Fig5Cell, Fig5Options};
use duplexity::experiments::fig6::{dyads_per_port, fig6, Fig6Cell};
use duplexity::experiments::sweep::{latency_load_sweep, SweepOptions};
use duplexity::experiments::tables::{table2_rows, Table2Row};
use duplexity::{Design, Workload};
use duplexity_queueing::des::Mg1Options;

/// Compares against `tests/golden/<name>.json` via the shared helper
/// (first-mismatch cell/field naming, `UPDATE_GOLDEN=1` regeneration).
fn assert_matches_golden<T: serde::Serialize>(name: &str, value: &T) {
    common::assert_matches_golden("golden", name, value);
}

fn golden_fig5_opts() -> Fig5Options {
    Fig5Options {
        loads: vec![0.3, 0.6],
        workloads: vec![Workload::McRouter],
        designs: vec![Design::Baseline, Design::Duplexity],
        horizon_cycles: 500_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        ..Fig5Options::default()
    }
}

fn golden_fig5_cells() -> Vec<Fig5Cell> {
    let cells = run_fig5(&golden_fig5_opts());
    assert!(
        cells.iter().all(|c| !c.saturated && c.p99_us.is_finite()),
        "golden grid must stay unsaturated so every float round-trips"
    );
    cells
}

#[test]
fn fig5_small_grid_matches_golden() {
    assert_matches_golden("fig5_small_grid", &golden_fig5_cells());
}

#[test]
fn fig5_golden_fixture_round_trips_through_json() {
    let cells = golden_fig5_cells();
    let json = serde_json::to_string_pretty(&cells).expect("serialize");
    let back: Vec<Fig5Cell> = serde_json::from_str(&json).expect("deserialize Fig5Cell vec");
    assert_eq!(back.len(), cells.len());
    for (a, b) in cells.iter().zip(&back) {
        assert_eq!(a.design, b.design);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.p99_us, b.p99_us);
        assert_eq!(a.iso_p99_norm, b.iso_p99_norm);
        assert_eq!(a.stp_norm, b.stp_norm);
    }
}

#[test]
fn fig6_derived_from_small_grid_matches_golden() {
    let f6: Vec<Fig6Cell> = fig6(&golden_fig5_cells());
    assert!(dyads_per_port(&f6) >= 1);
    assert_matches_golden("fig6_small_grid", &f6);
}

#[test]
fn slo_sweep_matches_golden() {
    let points = latency_load_sweep(&SweepOptions {
        workload: Workload::McRouter,
        designs: vec![Design::Baseline, Design::Smt, Design::Duplexity],
        loads: vec![0.2, 0.5, 0.8],
        calibration_cycles: 500_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 50_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        ..SweepOptions::default()
    });
    assert!(
        points.iter().all(|p| !p.saturated && p.p99_us.is_finite()),
        "golden sweep must stay unsaturated so every float round-trips"
    );
    assert_matches_golden("slo_sweep", &points);
}

/// The fault-sweep grid CI re-runs at 8 workers and diffs against
/// `tests/golden/fault_sweep.json`.
fn golden_fault_sweep_points() -> Vec<FaultSweepPoint> {
    let points = fault_sweep(&FaultSweepOptions {
        loads: vec![0.3, 0.6],
        queue: Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        ..FaultSweepOptions::default()
    });
    assert!(
        points.iter().all(|p| !p.saturated && p.p99_us.is_finite()),
        "golden fault grid must stay unsaturated so every float round-trips"
    );
    points
}

#[test]
fn fault_sweep_matches_golden() {
    assert_matches_golden("fault_sweep", &golden_fault_sweep_points());
}

#[test]
fn fault_sweep_golden_fixture_round_trips_through_json() {
    let points = golden_fault_sweep_points();
    let json = serde_json::to_string_pretty(&points).expect("serialize");
    let back: Vec<FaultSweepPoint> =
        serde_json::from_str(&json).expect("deserialize FaultSweepPoint vec");
    assert_eq!(back.len(), points.len());
    for (a, b) in points.iter().zip(&back) {
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.load, b.load);
        assert_eq!(a.p99_us, b.p99_us);
        assert_eq!(a.mean_attempts, b.mean_attempts);
        assert_eq!(a.drop_rate, b.drop_rate);
    }
}

#[test]
fn table2_rows_match_golden() {
    let rows = table2_rows();
    assert_eq!(rows.len(), 7);
    assert_matches_golden("table2", &rows);
}

#[test]
fn table2_golden_fixture_round_trips_through_json() {
    let rows = table2_rows();
    let json = serde_json::to_string_pretty(&rows).expect("serialize");
    let back: Vec<Table2Row> = serde_json::from_str(&json).expect("deserialize Table2Row vec");
    assert_eq!(back, rows);
}
