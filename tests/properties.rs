//! Property-based tests over the workspace's core invariants.

use duplexity_cpu::op::{Fetched, InstructionStream, LoopedTrace, MicroOp, Op, NO_REG};
use duplexity_net::{EventKind, FaultPlan, LatencyDist, RetryPolicy};
use duplexity_queueing::closed_loop::closed_loop_utilization;
use duplexity_queueing::des::{simulate_mg1_dist, Mg1Options};
use duplexity_queueing::mg1::Mg1Analytic;
use duplexity_stats::binomial::Binomial;
use duplexity_stats::dist::{Distribution, Exponential, Hyperexponential};
use duplexity_stats::quantile::QuantileEstimator;
use duplexity_stats::rng::{derive_stream, rng_from_seed};
use duplexity_stats::summary::Summary;
use duplexity_uarch::cache::{AccessKind, Cache, CacheConfig};
use proptest::prelude::*;
use rand::RngExt;

proptest! {
    /// Closed-loop utilization is always the exact compute share.
    #[test]
    fn closed_loop_is_exact_share(compute in 0.01f64..100.0, stall in 0.0f64..100.0) {
        let u = closed_loop_utilization(compute, stall);
        prop_assert!((u - compute / (compute + stall)).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&u));
    }

    /// Binomial CDF and survival function always complement each other.
    #[test]
    fn binomial_complement(n in 1u32..200, p in 0.0f64..1.0, k in 1u32..200) {
        prop_assume!(k <= n);
        let b = Binomial::new(n, p);
        let total = b.cdf(k - 1) + b.sf_at_least(k);
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// A hyperexponential two-moment fit reproduces its targets.
    #[test]
    fn hyperexp_fit_is_faithful(mean in 0.1f64..100.0, scv in 1.0f64..20.0) {
        let d = Hyperexponential::from_mean_scv(mean, scv);
        prop_assert!((d.mean() - mean).abs() / mean < 1e-9);
        prop_assert!((d.scv().unwrap() - scv).abs() / scv < 1e-9);
    }

    /// Exponential samples are non-negative and hit their mean.
    #[test]
    fn exponential_sampling(mean in 0.1f64..50.0, seed in 0u64..1000) {
        let d = Exponential::new(mean);
        let mut rng = rng_from_seed(seed);
        let mut s = Summary::new();
        for _ in 0..2000 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= 0.0);
            s.record(x);
        }
        prop_assert!((s.mean() - mean).abs() / mean < 0.2);
    }

    /// Quantiles are monotone in the quantile parameter.
    #[test]
    fn quantiles_monotone(values in prop::collection::vec(0.0f64..1e6, 10..200)) {
        let mut q: QuantileEstimator = values.into_iter().collect();
        let p50 = q.quantile(0.5).unwrap();
        let p90 = q.quantile(0.9).unwrap();
        let p99 = q.quantile(0.99).unwrap();
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p99);
    }

    /// Cache residency never exceeds capacity, and a just-accessed line is
    /// always resident.
    #[test]
    fn cache_capacity_invariant(addrs in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = Cache::new(CacheConfig {
            capacity_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            write_through: false,
        });
        for &a in &addrs {
            c.access(a, AccessKind::Read);
            prop_assert!(c.probe(a), "just-accessed line must be resident");
            prop_assert!(c.resident_lines() <= c.total_lines());
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
    }

    /// M/G/1 simulation utilization tracks the offered load for any stable
    /// hyperexponential service.
    #[test]
    fn mg1_utilization_tracks_rho(load in 0.1f64..0.8, scv in 1.0f64..8.0) {
        let service = Hyperexponential::from_mean_scv(2.0, scv);
        let opts = Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            seed: 9,
            ..Mg1Options::default()
        };
        let r = simulate_mg1_dist(load / 2.0, &service, &opts);
        prop_assert!((r.utilization - load).abs() < 0.08,
            "load {} util {}", load, r.utilization);
        // And the mean sojourn is at least the mean service.
        prop_assert!(r.mean_sojourn_us >= 1.5);
    }

    /// Pollaczek–Khinchine: mean wait grows with service variability.
    #[test]
    fn pk_wait_grows_with_scv(load in 0.2f64..0.9, scv_lo in 0.0f64..2.0, extra in 0.1f64..5.0) {
        let a = Mg1Analytic { lambda_per_us: load / 4.0, mean_service_us: 4.0, service_scv: scv_lo };
        let b = Mg1Analytic {
            lambda_per_us: load / 4.0,
            mean_service_us: 4.0,
            service_scv: scv_lo + extra,
        };
        prop_assert!(b.mean_wait_us() > a.mean_wait_us());
    }

    /// Distinct (seed, stream) tuples derive distinct sub-stream seeds, and
    /// the RNGs they produce start decorrelated — the property the parallel
    /// experiment engine's bit-for-bit determinism rests on (each grid cell
    /// derives its own stream from the experiment seed and its coordinates).
    #[test]
    fn derive_stream_distinct_tuples_distinct_streams(
        seed in any::<u64>(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        prop_assume!(a != b);
        let sa = derive_stream(seed, a);
        let sb = derive_stream(seed, b);
        prop_assert_ne!(sa, sb, "labels {} and {} collided under seed {}", a, b, seed);
        let mut ra = rng_from_seed(sa);
        let mut rb = rng_from_seed(sb);
        prop_assert_ne!(ra.random::<u64>(), rb.random::<u64>());
    }

    /// Different parent seeds never alias the same sub-stream label.
    #[test]
    fn derive_stream_separates_parent_seeds(s1 in any::<u64>(), s2 in any::<u64>(), label in any::<u64>()) {
        prop_assume!(s1 != s2);
        prop_assert_ne!(derive_stream(s1, label), derive_stream(s2, label));
    }

    /// The same (seed, stream) tuple always yields the identical generator
    /// sequence — derivation is a pure function, with no hidden state.
    #[test]
    fn derive_stream_same_tuple_identical_sequence(seed in any::<u64>(), label in any::<u64>()) {
        let sa = derive_stream(seed, label);
        let sb = derive_stream(seed, label);
        prop_assert_eq!(sa, sb);
        let mut ra = rng_from_seed(sa);
        let mut rb = rng_from_seed(sb);
        for _ in 0..32 {
            prop_assert_eq!(ra.random::<u64>(), rb.random::<u64>());
        }
    }

    /// Chained derivation (experiment seed → figure label → cell label, the
    /// shape `run_fig5` uses) keeps sibling cells on distinct streams.
    #[test]
    fn derive_stream_chains_stay_distinct(seed in any::<u64>(), fig in any::<u64>(), cell in 0u64..4096) {
        let parent = derive_stream(seed, fig);
        prop_assert_ne!(derive_stream(parent, cell), derive_stream(parent, cell + 1));
        prop_assert_ne!(derive_stream(parent, cell), parent);
    }

    /// Retry with backoff never exceeds the attempt cap, and every
    /// completed event pays at least its winning leg's latency.
    #[test]
    fn fault_retries_never_exceed_attempt_cap(
        drop_prob in 0.0f64..1.0,
        max_attempts in 1u32..8,
        timeout in 1.0f64..50.0,
        seed in 0u64..500,
    ) {
        let plan = FaultPlan::none()
            .with_drop(drop_prob)
            .with_retry(RetryPolicy::new(max_attempts, timeout, 1.0, 8.0));
        let dist = LatencyDist::Exponential { mean_us: 2.0 };
        let mut rng = rng_from_seed(seed);
        for _ in 0..64 {
            let ev = plan.sample_event(EventKind::RemoteMemory, &mut rng, |r| dist.sample(r));
            prop_assert!(ev.attempts >= 1 && ev.attempts <= max_attempts,
                "attempts {} vs cap {}", ev.attempts, max_attempts);
            prop_assert!(ev.latency_us >= 0.0 && ev.latency_us.is_finite());
            if ev.completed {
                let winner = ev.legs_us.iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert!(ev.latency_us >= winner);
            } else {
                prop_assert_eq!(ev.attempts, max_attempts);
                prop_assert!(ev.legs_us.is_empty());
            }
        }
    }

    /// Duplicate-and-race with no drops issues exactly two legs and
    /// finishes at the faster one.
    #[test]
    fn tied_request_latency_is_min_of_legs(mean in 0.5f64..20.0, seed in 0u64..500) {
        let plan = FaultPlan::none().with_duplicate();
        let dist = LatencyDist::Exponential { mean_us: mean };
        let mut rng = rng_from_seed(seed);
        for _ in 0..64 {
            let ev = plan.sample_event(EventKind::RpcLeg, &mut rng, |r| dist.sample(r));
            prop_assert!(ev.completed);
            prop_assert_eq!(ev.attempts, 1);
            prop_assert_eq!(ev.legs_us.len(), 2);
            let min = ev.legs_us[0].min(ev.legs_us[1]);
            prop_assert!((ev.latency_us - min).abs() == 0.0,
                "latency {} vs min leg {}", ev.latency_us, min);
        }
    }

    /// The zero-fault plan is a bitwise identity: same latency as sampling
    /// the distribution directly, and the RNG is left in the identical
    /// state (the golden-fixture contract).
    #[test]
    fn zero_fault_plan_is_a_bitwise_identity(mean in 0.5f64..20.0, seed in any::<u64>()) {
        let plan = FaultPlan::none();
        let dist = LatencyDist::Exponential { mean_us: mean };
        let mut a = rng_from_seed(seed);
        let mut b = rng_from_seed(seed);
        for _ in 0..32 {
            let ev = plan.sample_event(EventKind::Nvm, &mut a, |r| dist.sample(r));
            let direct = dist.sample(&mut b);
            prop_assert_eq!(ev.latency_us, direct);
            prop_assert_eq!(ev.attempts, 1);
        }
        prop_assert_eq!(a, b, "RNG states diverged under the identity plan");
    }

    /// Looped traces replay identically regardless of the clock values the
    /// engine hands them.
    #[test]
    fn looped_trace_is_clock_invariant(nows in prop::collection::vec(0u64..1_000_000, 16)) {
        let ops = vec![
            MicroOp::new(0, Op::IntAlu).with_dst(1),
            MicroOp::new(4, Op::Load { addr: 64 }).with_srcs(1, NO_REG),
        ];
        let mut a = LoopedTrace::new(ops.clone());
        let mut b = LoopedTrace::new(ops);
        let mut rng1 = rng_from_seed(1);
        let mut rng2 = rng_from_seed(2);
        for &now in &nows {
            let x = a.next(now, &mut rng1);
            let y = b.next(0, &mut rng2);
            match (x, y) {
                (Fetched::Op(p), Fetched::Op(q)) => prop_assert_eq!(p, q),
                _ => prop_assert!(false, "looped traces always yield ops"),
            }
        }
    }
}
