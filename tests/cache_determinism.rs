//! Byte-identity of cached experiment artifacts across cache temperature
//! and worker count.
//!
//! The cell cache's contract is that it is *invisible* in the artifact: a
//! cold run (every cell computed, then stored), a warm run (every cell
//! loaded), and a mixed run (a sub-grid populated first, the rest computed)
//! must all serialize to exactly the bytes of a cache-free run — at one
//! worker and at eight. Exercised for the two standing bench grids, fig5
//! and the cluster sweep.

use duplexity::experiments::cluster_sweep::{cluster_sweep, ClusterSweepOptions};
use duplexity::experiments::fig5::{run_fig5, Fig5Options};
use duplexity::{CellCache, Design, Workload};
use duplexity_queueing::cluster::BalancerPolicy;
use duplexity_queueing::des::Mg1Options;
use std::path::PathBuf;

fn tmp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "duplexity-cache-determinism-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fig5_opts(loads: Vec<f64>, threads: usize, cache: Option<CellCache>) -> Fig5Options {
    Fig5Options {
        loads,
        workloads: vec![Workload::McRouter],
        designs: vec![Design::Baseline, Design::Smt, Design::Duplexity],
        horizon_cycles: 1_200_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 100_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        cache,
        ..Fig5Options::default()
    }
}

fn cluster_opts(loads: Vec<f64>, threads: usize) -> ClusterSweepOptions {
    ClusterSweepOptions {
        designs: vec![Design::Baseline],
        policies: vec![BalancerPolicy::Random, BalancerPolicy::Jsq],
        server_counts: vec![4],
        loads,
        calibration_cycles: 200_000,
        seed: 7,
        queue: Mg1Options {
            max_samples: 20_000,
            warmup: 500,
            ..Mg1Options::default()
        },
        threads,
        ..ClusterSweepOptions::default()
    }
}

#[test]
fn fig5_cold_warm_and_mixed_runs_are_byte_identical() {
    let loads = vec![0.3, 0.5];
    let reference =
        serde_json::to_string_pretty(&run_fig5(&fig5_opts(loads.clone(), 1, None))).unwrap();

    let dir = tmp_dir("fig5");
    // Cold at 1 worker: every cell computed and stored.
    let cold = CellCache::new(&dir);
    let out =
        serde_json::to_string_pretty(&run_fig5(&fig5_opts(loads.clone(), 1, Some(cold.clone()))))
            .unwrap();
    assert_eq!(out, reference, "cold cached fig5 diverged");
    assert_eq!(cold.hits(), 0);
    assert!(cold.misses() > 0);

    // Warm at 8 workers: every cell loaded.
    let warm = CellCache::new(&dir);
    let out =
        serde_json::to_string_pretty(&run_fig5(&fig5_opts(loads.clone(), 8, Some(warm.clone()))))
            .unwrap();
    assert_eq!(out, reference, "warm cached fig5 diverged");
    assert_eq!(warm.misses(), 0);
    assert_eq!(warm.hits(), cold.misses());

    // Mixed at 8 workers: a fresh directory seeded by a one-load sub-grid,
    // then the full grid — the overlap loads, the rest computes.
    let dir = tmp_dir("fig5-mixed");
    let seedc = CellCache::new(&dir);
    let _ = run_fig5(&fig5_opts(vec![0.5], 1, Some(seedc)));
    let mixed = CellCache::new(&dir);
    let out =
        serde_json::to_string_pretty(&run_fig5(&fig5_opts(loads, 8, Some(mixed.clone())))).unwrap();
    assert_eq!(out, reference, "mixed cached fig5 diverged");
    assert!(mixed.hits() > 0, "sub-grid cells were not reused");
    assert!(mixed.misses() > 0, "full grid found nothing to compute");

    let _ = std::fs::remove_dir_all(tmp_dir("fig5"));
    let _ = std::fs::remove_dir_all(tmp_dir("fig5-mixed"));
}

#[test]
fn cluster_sweep_cold_warm_and_mixed_runs_are_byte_identical() {
    let loads = vec![0.4, 0.7];
    let reference =
        serde_json::to_string_pretty(&cluster_sweep(&cluster_opts(loads.clone(), 1))).unwrap();

    let dir = tmp_dir("cluster");
    let cold = CellCache::new(&dir);
    let mut opts = cluster_opts(loads.clone(), 1);
    opts.cache = Some(cold.clone());
    let out = serde_json::to_string_pretty(&cluster_sweep(&opts)).unwrap();
    assert_eq!(out, reference, "cold cached cluster sweep diverged");
    assert_eq!(cold.hits(), 0);
    assert!(cold.misses() > 0);

    let warm = CellCache::new(&dir);
    let mut opts = cluster_opts(loads.clone(), 8);
    opts.cache = Some(warm.clone());
    let out = serde_json::to_string_pretty(&cluster_sweep(&opts)).unwrap();
    assert_eq!(out, reference, "warm cached cluster sweep diverged");
    assert_eq!(warm.misses(), 0);
    assert_eq!(warm.hits(), cold.misses());

    let dir = tmp_dir("cluster-mixed");
    let mut sub = cluster_opts(vec![0.4], 1);
    sub.cache = Some(CellCache::new(&dir));
    let _ = cluster_sweep(&sub);
    let mixed = CellCache::new(&dir);
    let mut opts = cluster_opts(loads, 8);
    opts.cache = Some(mixed.clone());
    let out = serde_json::to_string_pretty(&cluster_sweep(&opts)).unwrap();
    assert_eq!(out, reference, "mixed cached cluster sweep diverged");
    assert!(mixed.hits() > 0, "sub-grid cells were not reused");
    assert!(mixed.misses() > 0, "full grid found nothing to compute");

    let _ = std::fs::remove_dir_all(tmp_dir("cluster"));
    let _ = std::fs::remove_dir_all(tmp_dir("cluster-mixed"));
}
