//! The two-level rack sweep contract, end to end.
//!
//! Four guarantees (see `crates/queueing/src/rack.rs` and the
//! `rack_sweep` driver):
//!
//! 1. **Worker-count independence** — the rack-sweep grid, with every
//!    feature axis active (signal staleness, work stealing, distributed
//!    dispatch planes, Zipf tenant skew, within-cell replications), is
//!    bit-identical at 1 and 8 `ExecPool` workers, and at the
//!    resolved-from-env worker count (`threads: 0`, which CI pins to
//!    `DUPLEXITY_THREADS=8`).
//! 2. **Degeneracy** — a fresh plan (Δ=0, no stealing, centralized, one
//!    tenant) reproduces the cluster sweep's artifact byte-for-byte: the
//!    rack model strictly generalizes the cluster model, paying zero
//!    fidelity for the new axes when they are off.
//! 3. **Golden snapshot** — a small fixed-seed grid is byte-identical to
//!    `tests/golden/rack_sweep.json` (regenerate with `UPDATE_GOLDEN=1`).
//! 4. **Cache invisibility** — a cold cached run, then a warm run from the
//!    same directory, serialize to exactly the cache-free bytes, with the
//!    warm run computing **nothing** (zero misses).

mod common;

use duplexity::experiments::cluster_sweep::{cluster_sweep, ClusterSweepOptions};
use duplexity::experiments::rack_sweep::{rack_sweep, RackSweepOptions};
use duplexity::{BalancerPolicy, CellCache, Design, RackPlan};
use duplexity_queueing::des::Mg1Options;
use std::path::PathBuf;

/// A grid that exercises every rack axis at once: fresh (the degenerate
/// anchor), stale, stale-with-stealing, and stale-distributed-skewed.
fn sweep_opts(threads: usize) -> RackSweepOptions {
    RackSweepOptions {
        designs: vec![Design::Baseline, Design::Duplexity],
        policies: vec![BalancerPolicy::Jsq],
        plans: vec![
            RackPlan::fresh(),
            RackPlan::fresh().with_delta(8.0),
            RackPlan::fresh().with_delta(8.0).with_steal(2),
            RackPlan::fresh()
                .with_delta(8.0)
                .distributed(4)
                .with_tenants(64, 0.99),
        ],
        server_counts: vec![4],
        loads: vec![0.4, 0.7],
        calibration_cycles: 200_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 20_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        ..RackSweepOptions::default()
    }
}

#[test]
fn rack_sweep_grid_is_bit_identical_at_1_and_8_workers() {
    let one = rack_sweep(&sweep_opts(1));
    let eight = rack_sweep(&sweep_opts(8));
    assert_eq!(one.len(), eight.len());
    assert_eq!(one.len(), 2 * 4 * 2);
    for p in &one {
        assert!(!p.saturated && p.samples > 0, "unexpected empty cell {p:?}");
    }
    // The steal plan must actually steal somewhere, or the independent
    // steal-stream axis this test claims to pin never executed.
    assert!(
        one.iter().any(|p| p.steals > 0),
        "no cell recorded a successful steal"
    );
    // Bitwise equality, not tolerance: the determinism contract.
    common::assert_identical_artifacts("rack_sweep 1 vs 8 workers", &one, &eight);
    // The resolved-from-env arm (threads: 0 honours DUPLEXITY_THREADS,
    // which CI sets to 8) must land on the same bytes as both.
    common::assert_identical_artifacts(
        "rack_sweep resolved-from-env workers",
        &one,
        &rack_sweep(&sweep_opts(0)),
    );
}

#[test]
fn replicated_rack_sweep_is_bit_identical_at_1_and_8_workers() {
    // Within-cell parallel replications flatten into the pool's work list
    // and merge in replication order — worker placement must not show.
    let replicated = |threads| RackSweepOptions {
        replications: 4,
        ..sweep_opts(threads)
    };
    let one = rack_sweep(&replicated(1));
    let eight = rack_sweep(&replicated(8));
    assert_eq!(one.len(), 2 * 4 * 2);
    common::assert_identical_artifacts("replicated rack_sweep 1 vs 8 workers", &one, &eight);
}

#[test]
fn fresh_plans_reproduce_the_cluster_sweep_artifact() {
    // The stale-signal degeneracy criterion at the artifact level: with
    // Δ=0 and no stealing, every measured field of every rack cell equals
    // the corresponding cluster-sweep cell bit-for-bit. (The engines'
    // draw-for-draw equivalence is pinned in `crates/queueing/src/rack.rs`
    // and the driver's own unit tests; this is the end-to-end check that
    // the sweep plumbing — calibration, cell seeds, replication merge —
    // preserves it.)
    let mut ropts = sweep_opts(0);
    ropts.plans = vec![RackPlan::fresh()];
    let copts = ClusterSweepOptions {
        designs: ropts.designs.clone(),
        policies: ropts.policies.clone(),
        server_counts: ropts.server_counts.clone(),
        loads: ropts.loads.clone(),
        calibration_cycles: ropts.calibration_cycles,
        seed: ropts.seed,
        queue: ropts.queue,
        ..ClusterSweepOptions::default()
    };
    let rack = rack_sweep(&ropts);
    let cluster = cluster_sweep(&copts);
    assert_eq!(rack.len(), cluster.len());
    for (r, c) in rack.iter().zip(&cluster) {
        assert_eq!(r.design, c.design);
        assert_eq!(r.policy, c.policy);
        assert_eq!(r.servers, c.servers);
        assert_eq!(r.load, c.load);
        assert_eq!(r.samples, c.samples, "{r:?} vs {c:?}");
        assert_eq!(r.converged, c.converged);
        for (field, x, y) in [
            ("p99", r.p99_us, c.p99_us),
            ("p50", r.p50_us, c.p50_us),
            ("mean", r.mean_us, c.mean_us),
            ("wait", r.mean_wait_us, c.mean_wait_us),
            ("util", r.utilization, c.utilization),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{} {} @{}: rack {field} {x} vs cluster {y}",
                r.policy,
                r.servers,
                r.load
            );
        }
        assert_eq!(r.steals, 0, "a fresh plan must never draw a steal probe");
    }
}

#[test]
fn rack_sweep_small_grid_matches_golden() {
    let opts = RackSweepOptions {
        designs: vec![Design::Baseline],
        threads: 0,
        ..sweep_opts(0)
    };
    let points = rack_sweep(&opts);
    assert!(
        points.iter().all(|p| !p.saturated && p.p99_us.is_finite()),
        "golden grid must stay unsaturated so every float round-trips"
    );
    common::assert_matches_golden("rack_determinism", "rack_sweep", &points);
}

fn tmp_dir(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "duplexity-rack-determinism-{label}-{}",
        std::process::id()
    ))
}

#[test]
fn rack_sweep_cold_then_warm_cached_runs_are_byte_identical() {
    let reference = common::pretty_json(&rack_sweep(&sweep_opts(1)));

    let dir = tmp_dir("rack");
    let _ = std::fs::remove_dir_all(&dir);
    // Cold at 1 worker: every cell computed and stored.
    let cold = CellCache::new(&dir);
    let mut opts = sweep_opts(1);
    opts.cache = Some(cold.clone());
    let out = common::pretty_json(&rack_sweep(&opts));
    assert_eq!(out, reference, "cold cached rack sweep diverged");
    assert_eq!(cold.hits(), 0);
    assert!(cold.misses() > 0);

    // Warm at 8 workers: every cell loaded, nothing recomputed.
    let warm = CellCache::new(&dir);
    let mut opts = sweep_opts(8);
    opts.cache = Some(warm.clone());
    let out = common::pretty_json(&rack_sweep(&opts));
    assert_eq!(out, reference, "warm cached rack sweep diverged");
    assert_eq!(warm.misses(), 0, "a warm rack re-run must compute nothing");
    assert_eq!(warm.hits(), cold.misses());

    let _ = std::fs::remove_dir_all(&dir);
}
