//! The fault layer's determinism contract under the parallel engine.
//!
//! Fault injection adds RNG draws (drop coins, slow-replica coins, duplicate
//! legs) to every stall event, which makes it the most likely place for a
//! worker-count-dependent sample path to sneak in. These tests run the
//! fault-sweep grid — and a faulted Figure 5 grid — with 1 worker (the
//! inline serial path) and with 2, 4, and 8 workers, and `assert_eq!` every
//! field of every point: exact floating-point equality, no tolerance (the
//! same contract as `tests/parallel_determinism.rs`).

use duplexity::experiments::fault_sweep::{fault_sweep, FaultSweepOptions};
use duplexity::experiments::fig5::{run_fig5, Fig5Options};
use duplexity::{Design, FaultPlan, RetryPolicy, Workload};
use duplexity_queueing::des::Mg1Options;

fn sweep_opts(threads: usize) -> FaultSweepOptions {
    FaultSweepOptions {
        loads: vec![0.3, 0.6],
        queue: Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        threads,
        ..FaultSweepOptions::default()
    }
}

fn faulted_fig5_opts(threads: usize) -> Fig5Options {
    Fig5Options {
        loads: vec![0.3, 0.6],
        workloads: vec![Workload::McRouter],
        designs: vec![Design::Baseline, Design::Duplexity],
        horizon_cycles: 500_000,
        seed: 42,
        queue: Mg1Options {
            max_samples: 60_000,
            warmup: 1_000,
            ..Mg1Options::default()
        },
        fault: FaultPlan::none()
            .with_drop(0.05)
            .with_retry(RetryPolicy::new(4, 10.0, 2.0, 16.0))
            .with_slow_replica(0.05, 3.0),
        threads,
        stepping: duplexity_cpu::designs::Stepping::FastForward,
        cache: None,
    }
}

#[test]
fn fault_sweep_is_bit_identical_across_worker_counts() {
    let serial = fault_sweep(&sweep_opts(1));
    assert_eq!(serial.len(), 10, "5 default policies x 2 loads");
    for threads in [2usize, 4, 8] {
        let parallel = fault_sweep(&sweep_opts(threads));
        assert_eq!(parallel.len(), serial.len(), "threads={threads}");
        for (s, p) in serial.iter().zip(&parallel) {
            let at = format!("threads={threads} point ({}, {})", s.policy, s.load);
            assert_eq!(s.policy, p.policy, "{at}");
            assert_eq!(s.load, p.load, "{at}");
            assert_eq!(s.p50_us, p.p50_us, "{at}");
            assert_eq!(s.p99_us, p.p99_us, "{at}");
            assert_eq!(s.mean_us, p.mean_us, "{at}");
            assert_eq!(s.mean_attempts, p.mean_attempts, "{at}");
            assert_eq!(s.drop_rate, p.drop_rate, "{at}");
            assert_eq!(s.fail_rate, p.fail_rate, "{at}");
            assert_eq!(s.saturated, p.saturated, "{at}");
        }
    }
}

#[test]
fn faulted_fig5_is_bit_identical_across_worker_counts() {
    let serial = run_fig5(&faulted_fig5_opts(1));
    assert_eq!(serial.len(), 4);
    for threads in [2usize, 8] {
        let parallel = run_fig5(&faulted_fig5_opts(threads));
        assert_eq!(parallel.len(), serial.len(), "threads={threads}");
        for (s, p) in serial.iter().zip(&parallel) {
            let at = format!(
                "threads={threads} cell ({:?}, {:?}, {})",
                s.design, s.workload, s.load
            );
            assert_eq!(s.utilization, p.utilization, "{at}");
            assert_eq!(s.p99_us, p.p99_us, "{at}");
            assert_eq!(s.iso_p99_us, p.iso_p99_us, "{at}");
            assert_eq!(s.stp_norm, p.stp_norm, "{at}");
            assert_eq!(s.saturated, p.saturated, "{at}");
        }
    }
}

#[test]
fn common_random_numbers_hold_across_policies() {
    // Every policy at a given load sees the same arrival process: the
    // fault-free policy's sample path must be invariant to which other
    // policies share the grid.
    let full = fault_sweep(&sweep_opts(1));
    let mut lonely_opts = sweep_opts(1);
    lonely_opts.policies.truncate(1); // just "none"
    let lonely = fault_sweep(&lonely_opts);
    for (a, b) in full
        .iter()
        .filter(|p| p.policy == "none")
        .zip(lonely.iter())
    {
        assert_eq!(a.p99_us, b.p99_us, "load {}", a.load);
        assert_eq!(a.mean_us, b.mean_us, "load {}", a.load);
    }
}
