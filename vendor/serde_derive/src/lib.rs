//! Offline vendored `#[derive(Serialize, Deserialize)]` for the stub `serde`.
//!
//! Because the offline build environments carry no registry, `syn`/`quote`
//! are unavailable; the item definition is parsed directly from the
//! [`proc_macro::TokenStream`]. Supported shapes — the only ones the
//! workspace uses — are non-generic structs with named fields, tuple
//! structs, unit structs, and enums whose variants are unit, struct, or
//! tuple shaped. Generics or unions produce a compile error naming the
//! offending type.
//!
//! The generated code targets the stub `serde`'s concrete `Value` data
//! model: structs become insertion-ordered JSON objects; unit enum variants
//! become strings; data-carrying variants become single-field objects
//! (`{"Variant": ...}`), matching `serde_json`'s externally-tagged default.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (stub data model) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(&input, Which::Serialize)
}

/// Derives `serde::Deserialize` (stub data model) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(&input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

/// The parsed shape of the item under derive.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

fn expand(input: &TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => {
            let code = match which {
                Which::Serialize => gen_serialize(&name, &shape),
                Which::Deserialize => gen_deserialize(&name, &shape),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Extracts the item name and shape from the raw token stream.
fn parse_item(input: &TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.clone().into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum keyword, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde stub cannot derive for generic type `{name}`"
        ));
    }

    let shape = match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(&g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(&g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Shape::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(&g.stream())?)
        }
        _ => {
            return Err(format!(
                "vendored serde stub cannot derive for `{keyword} {name}`"
            ))
        }
    };
    Ok((name, shape))
}

/// Advances past leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Consumes a type expression up to a top-level `,`, tracking `<...>` depth
/// (angle brackets are punctuation, not groups, in token streams).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0u32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: &TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&tokens, &mut i);
        i += 1; // the comma (or past-the-end)
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        i += 1;
        n += 1;
    }
    n
}

fn parse_variants(body: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while let Some(tt) = tokens.get(i) {
            i += 1;
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Value::Object(::std::vec![])".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants.iter().map(serialize_arm).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "Self::{vname} => \
             ::serde::Value::Str(::std::string::String::from({vname:?})),"
        ),
        VariantKind::Named(fields) => {
            let binds = fields.join(", ");
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value({f})),"
                    )
                })
                .collect();
            format!(
                "Self::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from({vname:?}), \
                  ::serde::Value::Object(::std::vec![{pushes}]))]),"
            )
        }
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
            let pattern = binds.join(", ");
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(x0)".to_string()
            } else {
                let items: String = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{items}])")
            };
            format!(
                "Self::{vname}({pattern}) => ::serde::Value::Object(::std::vec![\
                 (::std::string::String::from({vname:?}), {inner})]),"
            )
        }
    }
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields.iter().map(|f| named_field_init(f, "v")).collect();
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Shape::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Shape::TupleStruct(n) => format!(
            "match v {{\n\
               ::serde::Value::Array(items) if items.len() == {n} => {{\n\
                 ::std::result::Result::Ok(Self({}))\n\
               }}\n\
               other => ::std::result::Result::Err(::serde::Error::expected(\"{n}-tuple\", other)),\n\
             }}",
            (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                .collect::<String>()
        ),
        Shape::UnitStruct => "::std::result::Result::Ok(Self)".to_string(),
        Shape::Enum(variants) => gen_enum_deserialize(variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// `field: Deserialize::from_value(<object lookup>)?,`
fn named_field_init(field: &str, source: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value(\
             {source}.get_field({field:?})\
             .ok_or_else(|| ::serde::Error::missing({field:?}))?)?,"
    )
}

fn gen_enum_deserialize(variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "{:?} => ::std::result::Result::Ok(Self::{}),",
                v.name, v.name
            )
        })
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Named(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| named_field_init(f, "inner"))
                        .collect();
                    Some(format!(
                        "{vname:?} => ::std::result::Result::Ok(Self::{vname} {{ {inits} }}),"
                    ))
                }
                VariantKind::Tuple(1) => Some(format!(
                    "{vname:?} => ::std::result::Result::Ok(\
                     Self::{vname}(::serde::Deserialize::from_value(inner)?)),"
                )),
                VariantKind::Tuple(n) => Some(format!(
                    "{vname:?} => match inner {{\n\
                       ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok(Self::{vname}({fields})),\n\
                       other => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"variant tuple\", other)),\n\
                     }},",
                    fields = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                        .collect::<String>()
                )),
            }
        })
        .collect();
    format!(
        "match v {{\n\
           ::serde::Value::Str(s) => match s.as_str() {{\n\
             {unit_arms}\n\
             other => ::std::result::Result::Err(::serde::Error::msg(\
               ::std::format!(\"unknown variant `{{other}}`\"))),\n\
           }},\n\
           ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
             let (tag, inner) = &fields[0];\n\
             match tag.as_str() {{\n\
               {data_arms}\n\
               other => ::std::result::Result::Err(::serde::Error::msg(\
                 ::std::format!(\"unknown variant `{{other}}`\"))),\n\
             }}\n\
           }}\n\
           other => ::std::result::Result::Err(::serde::Error::expected(\"enum\", other)),\n\
         }}"
    )
}
