//! Offline vendored JSON encoder/decoder over the stub `serde` data model.
//!
//! Provides the call-site-compatible subset the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_writer_pretty`], and
//! [`from_str`]. Output is deterministic: object fields keep declaration
//! order, floats are printed with Rust's shortest round-trip formatting
//! (`{}`), and non-finite floats encode as `null` (matching the real
//! `serde_json`). That determinism is what makes the golden-fixture
//! regression tests under `tests/golden/` byte-stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for tree-shaped values; the `Result` mirrors the real API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, 2-space-indented JSON.
///
/// # Errors
///
/// Never fails for tree-shaped values; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as pretty JSON into `writer`.
///
/// # Errors
///
/// Returns an error when the underlying writer fails.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::msg(format!("io error: {e}")))
}

/// Parses a JSON document into `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d);
            })
        }
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                indent,
                depth,
                ('{', '}'),
                |o, (k, x), d| {
                    write_string(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(o, x, indent, d);
                },
            );
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip formatting; add `.0` so integral floats
    // stay floats on re-parse.
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<I, F, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator<Item = T>,
    F: FnMut(&mut String, T, usize),
{
    out.push(brackets.0);
    let n = items.len();
    if n == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(brackets.1);
}

/// Recursive-descent JSON parser into the stub [`Value`] tree.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns an error on malformed input or trailing garbage.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the fixtures.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::msg(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(&b) => {
                    // Consume one multi-byte UTF-8 character. Validate only
                    // its own bytes — validating the whole remaining input
                    // per character made large-document parsing quadratic.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::msg("invalid utf-8")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| Error::msg("truncated utf-8 sequence"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("p99".into())),
            ("value".into(), Value::Float(12.5)),
            ("count".into(), Value::UInt(3)),
            (
                "tags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        for s in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse_value(&s).unwrap(), v);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.5e-7,
            123_456_789.123_456_78,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let s = to_string(&47.0f64).unwrap();
        assert_eq!(s, "47.0");
        assert!(matches!(parse_value(&s).unwrap(), Value::Float(_)));
    }

    #[test]
    fn non_finite_encodes_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{").is_err());
    }

    #[test]
    fn multibyte_strings_round_trip() {
        let s = "µs: naïve — 慢い 🚀";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(parse_value(&json).unwrap(), Value::Str(s.into()));
    }

    #[test]
    fn large_strings_parse_in_linear_time() {
        // Regression: the parser used to re-validate the entire remaining
        // document for every character of every string, making this test
        // effectively hang (quadratic in document size).
        let body: String = "x".repeat(500_000);
        let json = format!("[\"{body}\",\"{body}\"]");
        let v = parse_value(&json).unwrap();
        let Value::Array(items) = v else {
            panic!("expected array")
        };
        assert_eq!(items.len(), 2);
        assert!(matches!(&items[0], Value::Str(s) if s.len() == 500_000));
    }
}
