//! Offline vendored stub of the tiny slice of the `rand` API this workspace
//! uses.
//!
//! The build environments this repository must compile in have **no access to
//! a crates registry**, so the workspace pins every external dependency to a
//! local path crate under `vendor/`. This crate reimplements exactly the
//! surface the simulators consume — [`rngs::StdRng`], [`SeedableRng`],
//! [`RngCore`] and [`RngExt`] (`random`, `random_range`) — on top of a
//! xoshiro256++ generator.
//!
//! Determinism contract: the generator is a pure function of its 32-byte
//! seed, with no global state, platform dependence, or thread dependence, so
//! every simulation in the workspace is bit-reproducible for a given seed —
//! including across the parallel experiment engine's worker threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words; object-safe core of the RNG stack.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from a fixed-width seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a value uniformly over a type's natural domain (the analogue
/// of `rand`'s `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Sampling of a value uniformly from a range (the analogue of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Extension methods every RNG gets for free (the `rand 0.9+` spelling:
/// `random` / `random_range`).
pub trait RngExt: RngCore {
    /// Samples a value uniformly over `T`'s natural domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Samples `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Truncation keeps the high-quality low bits of xoshiro256++.
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit; xoshiro's low bit is its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        #[allow(clippy::cast_precision_loss)]
        let x = (rng.next_u64() >> 11) as f64;
        x * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let x = (rng.next_u64() >> 40) as f32;
        x * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's unbiased multiply-shift rejection method.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}
uint_range!(u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + (self.end - self.start) * u;
                // Floating rounding may land exactly on `end`; clamp back.
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    ///
    /// Small, fast, and high quality; the exact algorithm is an internal
    /// detail — all the workspace guarantees is determinism per seed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut s: [u64; 4]) -> Self {
            // An all-zero state is the one fixed point; nudge away from it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            Self::from_state(s)
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self::from_state([next(), next(), next(), next()])
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        for _ in 0..256 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let a = rng.random_range(8usize..64);
            assert!((8..64).contains(&a));
            let b = rng.random_range(0u32..17);
            assert!(b < 17);
            let c = rng.random_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&c));
        }
    }

    #[test]
    fn range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 40_000;
        let sum: u64 = (0..n).map(|_| rng.random_range(0u64..100)).sum();
        #[allow(clippy::cast_precision_loss)]
        let mean = sum as f64 / f64::from(n);
        assert!((mean - 49.5).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let v: Vec<u64> = (0..4).map(|_| rng.random()).collect();
        assert_ne!(v, vec![0, 0, 0, 0]);
    }
}
