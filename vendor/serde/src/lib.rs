//! Offline vendored stub of the `serde` API surface this workspace uses.
//!
//! The build environments this repository must compile in have no crates
//! registry, so serialization is provided by this local crate instead of the
//! real `serde`. It keeps the same spelling at every call site —
//! `#[derive(Serialize, Deserialize)]` plus a `serde_json` companion — but
//! the data model is a single concrete JSON-shaped [`Value`] tree rather
//! than serde's generic visitor architecture. That is all the workspace
//! needs: exporting experiment artifacts as JSON and reading golden
//! regression fixtures back.
//!
//! Field order is preserved ([`Value::Object`] is a `Vec`, not a map), so
//! serialized output is deterministic — a requirement for the golden-fixture
//! tests under `tests/golden/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the single data model of the vendored stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Finite floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    #[must_use]
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with an arbitrary message.
    #[must_use]
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }

    /// A "missing field" error.
    #[must_use]
    pub fn missing(field: &str) -> Self {
        Self(format!("missing field `{field}`"))
    }

    /// A type-mismatch error.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Self {
        Self(format!("expected {what}, got {got:?}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion of a value into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction of a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from `v`, or reports why it cannot.
    ///
    /// # Errors
    ///
    /// Returns an error when `v` has the wrong shape for `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::try_from(*self).expect("unsigned fits u64"))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => {
                        <$t>::try_from(*n).map_err(|_| Error::expected(stringify!($t), v))
                    }
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = i64::try_from(*self).expect("signed fits i64");
                if x >= 0 {
                    Value::UInt(x as u64)
                } else {
                    Value::Int(x)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => i64::try_from(*n)
                        .ok()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), v)),
                    Value::Int(n) => {
                        <$t>::try_from(*n).map_err(|_| Error::expected(stringify!($t), v))
                    }
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // Mirrors serde_json: NaN and infinities serialize as null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(Error::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // The workspace deserializes `&'static str` only in small golden
        // fixtures (e.g. Table II component names); leaking the handful of
        // short strings is the price of a borrowless data model.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::expected("fixed-size array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $t::from_value(it.next().ok_or_else(|| Error::msg("tuple too short"))?)?,
                        )+);
                        if it.next().is_some() {
                            return Err(Error::msg("tuple too long"));
                        }
                        Ok(out)
                    }
                    _ => Err(Error::expected("tuple array", v)),
                }
            }
        }
    )+};
}
tuple_impls!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<f64> = vec![1.0, 2.5];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(f64::INFINITY.to_value(), Value::Null);
        assert_eq!(f64::NAN.to_value(), Value::Null);
    }

    #[test]
    fn integers_deserialize_into_floats() {
        assert_eq!(f64::from_value(&Value::UInt(7)).unwrap(), 7.0);
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.get_field("a"), Some(&Value::UInt(1)));
        assert_eq!(v.get_field("b"), None);
    }
}
