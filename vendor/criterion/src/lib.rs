//! Offline vendored benchmark harness with the `criterion` macro surface.
//!
//! The offline build environments carry no crates registry, so the bench
//! targets link against this local stand-in instead of the real criterion.
//! It keeps the call sites unchanged (`criterion_group!`, `criterion_main!`,
//! `Criterion::default().sample_size(n)`, `bench_function`, `Bencher::iter`)
//! and reports a simple mean wall-time per iteration. There is no
//! statistical analysis, warm-up modeling, or HTML report — the bench
//! binaries exist to regenerate the paper's figures and to smoke-time hot
//! paths, and `--test` runs (from `cargo test --benches`) execute each
//! closure once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// The benchmark driver handed to each target function.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` (via the [`Bencher`] it receives) and prints a one-line
    /// mean per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { self.sample_size },
            total_ns: 0,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            #[allow(clippy::cast_precision_loss)]
            let mean = b.total_ns as f64 / b.iters as f64;
            println!(
                "bench {name:<40} {:>12.0} ns/iter ({} iters)",
                mean, b.iters
            );
        }
        self
    }
}

/// Times closures for one benchmark target.
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, accumulating wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = f();
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
            drop(out);
        }
    }
}

/// An identity function that hides a value from the optimizer.
///
/// Re-exported for call-site compatibility; benches in this workspace import
/// `std::hint::black_box` directly.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
