//! Offline vendored property-testing harness exposing the `proptest!` macro
//! surface this workspace uses.
//!
//! Because the offline build environments carry no crates registry, this
//! local crate replaces the real `proptest`. It keeps the call sites
//! unchanged — `proptest! { #[test] fn p(x in 0u64..10) { .. } }`,
//! `prop_assert!`, `prop_assume!`, `any::<T>()`, `prop::collection::vec`,
//! `prop::option::of`, tuple strategies and `prop_map` — but runs a fixed
//! number of deterministically-seeded random cases with **no shrinking**:
//! a failing case panics with the sampled inputs printed, which is enough
//! to reproduce (the seed schedule is a pure function of the case index).
//!
//! `.proptest-regressions` files are intentionally ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the opt-level-2 cycle-simulator
        // properties fast while still exploring the input space.
        Self { cases: 64 }
    }
}

/// Why a single case did not pass: a rejected assumption or a failure.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed; the test panics.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of random values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident . $n:tt),+)),+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
);

/// A type with a canonical "arbitrary value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Combinator namespaces mirroring the real crate's `prop::` paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::RngExt;

        /// A vector-length specification: an exact size or a half-open range.
        #[derive(Debug, Clone)]
        pub struct SizeRange(core::ops::Range<usize>);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n..n + 1)
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                SizeRange(r)
            }
        }

        /// A strategy for `Vec`s with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// Generates vectors whose length is uniform over `len` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy, L: Into<SizeRange>>(element: S, len: L) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.random_range(self.len.0.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};
        use rand::RngExt;

        /// A strategy for `Option`s.
        pub struct OptionStrategy<S>(S);

        /// Generates `None` half the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                if rng.random::<bool>() {
                    Some(self.0.sample(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Builds the deterministic RNG for one test case.
#[must_use]
pub fn case_rng(case: u64) -> TestRng {
    // Golden-ratio stride decorrelates consecutive cases.
    TestRng::seed_from_u64(0xD1F7_5EED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs `body` over `cases` deterministic random cases; `sample` draws the
/// inputs (already formatted for diagnostics) for one case.
///
/// # Panics
///
/// Panics when a case fails, printing the case number and inputs.
pub fn run_cases<I, S, B>(cases: u32, mut sample: S, mut body: B)
where
    S: FnMut(&mut TestRng) -> (I, String),
    B: FnMut(I) -> Result<(), TestCaseError>,
{
    let mut rejected = 0u32;
    for case in 0..u64::from(cases) {
        let mut rng = case_rng(case);
        let (input, description) = sample(&mut rng);
        match body(input) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case {case} failed: {msg}\n  inputs: {description}")
            }
        }
    }
    assert!(
        rejected < cases,
        "all {cases} cases were rejected by prop_assume!"
    );
}

/// Defines deterministic property tests with the `proptest` call-site
/// grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $( $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    cfg.cases,
                    |rng| {
                        $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                        let description = ::std::format!(
                            ::std::concat!($(::std::stringify!($arg), " = {:?} ",)*),
                            $(&$arg),*
                        );
                        (($($arg,)*), description)
                    },
                    |($($arg,)*)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, printing
/// the sampled inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        /// Vectors respect their length range and map composes.
        #[test]
        fn vec_and_map(v in prop::collection::vec((0u32..10).prop_map(|x| x * 2), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in v {
                prop_assert!(x % 2 == 0);
                prop_assert!(x < 20);
            }
        }

        /// Assumptions reject without failing.
        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }

        /// Options produce both arms.
        #[test]
        fn option_strategy(o in prop::option::of(1u8..3)) {
            if let Some(x) = o {
                prop_assert!((1..3).contains(&x));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = || {
            let mut rng = super::case_rng(7);
            (0..4)
                .map(|_| super::Strategy::sample(&(0u64..100), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        super::run_cases(
            4,
            |rng| {
                let x = super::Strategy::sample(&(0u64..100), rng);
                (x, format!("x = {x}"))
            },
            |x| {
                prop_assert!(x > 1_000, "x was {}", x);
                Ok(())
            },
        );
    }
}
